// Out-of-core sharding contract (sim/shard_engine): the sharded engine must
// return bit-identical results to the in-memory batch engine for every shard
// count, memory budget, epoch quantum, and eviction schedule — and a corrupt
// or truncated spill file must cost exactly one shard a recompute, never its
// neighbors and never the result. These tests are the determinism and
// durability contract of DESIGN.md §"Out-of-core sharding".

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/grid/point.h"
#include "src/rng/rng_stream.h"
#include "src/sim/fault.h"
#include "src/sim/shard_engine.h"
#include "src/sim/trial.h"
#include "src/sim/walk_engine.h"

namespace levy::sim {
namespace {

namespace fs = std::filesystem;

/// Fresh spill directory per fixture; removed on teardown so runs never see
/// a previous test's shard files.
class ShardEngineTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "levy_shard_engine_test";
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override {
        clear_fault_plan();
        fs::remove_all(dir_);
    }

    [[nodiscard]] shard_options with_spill_dir(shard_options opts) const {
        opts.spill_dir = dir_.string();
        return opts;
    }

    fs::path dir_;
};

void expect_sharded_parity(sharded_walk_engine& engine, std::size_t k,
                           const exponent_strategy& strategy, point target,
                           std::uint64_t budget, rng stream, std::uint64_t cap,
                           const shard_options& opts) {
    walk_engine reference;
    const parallel_result base = reference.run_parallel(k, strategy, target, budget, stream, cap);
    const parallel_result sharded =
        engine.run_parallel(k, strategy, target, budget, stream, cap, opts);
    EXPECT_EQ(base.hit, sharded.hit)
        << "k=" << k << " shards=" << opts.shards << " budget=" << opts.memory_budget;
    EXPECT_EQ(base.time, sharded.time)
        << "k=" << k << " shards=" << opts.shards << " budget=" << opts.memory_budget;
    EXPECT_EQ(base.winner, sharded.winner)
        << "k=" << k << " shards=" << opts.shards << " budget=" << opts.memory_budget;
    if (base.hit) {
        // Bit-exact replay of the winning exponent, not merely approximate.
        EXPECT_EQ(base.winner_alpha, sharded.winner_alpha);
    } else {
        EXPECT_TRUE(std::isnan(sharded.winner_alpha));
    }
}

TEST_F(ShardEngineTest, ParityAcrossShardCounts) {
    sharded_walk_engine engine;
    for (const std::size_t shards : {1, 3, 16}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            shard_options opts = with_spill_dir({});
            opts.shards = shards;
            opts.sync_rounds = 0;  // parity, not durability: skip round syncs
            expect_sharded_parity(engine, 24, fixed_exponent(2.4), point{12, 3}, 900,
                                  rng::seeded(seed * 131), kNoCap, opts);
        }
    }
}

TEST_F(ShardEngineTest, ParityRandomizedAndRoundRobinStrategies) {
    // Strategies that draw from the walker stream shift every subsequent
    // draw; parity proves the sharded spawn consumes streams identically.
    sharded_walk_engine engine;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        shard_options opts = with_spill_dir({});
        opts.sync_rounds = 0;  // parity, not durability: skip round syncs
        opts.shards = 3;
        expect_sharded_parity(engine, 16, uniform_exponent(), point{10, -10}, 800,
                              rng::seeded(seed * 193 + 5), kNoCap, opts);
        opts.shards = 5;
        expect_sharded_parity(engine, 16, round_robin_exponent(), point{-8, 6}, 800,
                              rng::seeded(seed * 389 + 1), 128, opts);
    }
}

TEST_F(ShardEngineTest, ParityEdgeCases) {
    sharded_walk_engine engine;
    const rng stream = rng::seeded(99);
    shard_options opts = with_spill_dir({});
    opts.shards = 3;
    // k = 0: vacuous miss with time = budget.
    expect_sharded_parity(engine, 0, fixed_exponent(2.5), point{3, 3}, 50, stream, kNoCap,
                          opts);
    // Budget 0.
    expect_sharded_parity(engine, 4, fixed_exponent(2.5), point{3, 3}, 0, stream, kNoCap,
                          opts);
    // Target at the origin: winner must be walker 0 at time 0.
    expect_sharded_parity(engine, 4, fixed_exponent(2.5), origin, 50, stream, kNoCap, opts);
    // More shards than walkers: count clamps to one walker per shard.
    opts.shards = 64;
    expect_sharded_parity(engine, 5, fixed_exponent(2.2), point{4, 1}, 400, stream, kNoCap,
                          opts);
    // Stay-put-heavy fleets under tiny caps.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        opts.shards = 4;
        expect_sharded_parity(engine, 8, fixed_exponent(2.1), point{2, 0}, 300,
                              rng::seeded(seed), 1, opts);
    }
}

TEST_F(ShardEngineTest, ParityUnderMemoryBudgetAndEpochQuantum) {
    // A byte budget alone must derive a shard count; combined with a small
    // epoch quantum it forces every suspension + eviction + reload path.
    sharded_walk_engine engine;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        for (const std::uint64_t quantum : {0ULL, 1ULL, 7ULL}) {
            shard_options opts = with_spill_dir({});
            opts.shards = 1;  // the budget, not the caller, sets the count
            opts.memory_budget = 4 * walker_block::kBytesPerWalker;
            opts.epoch_steps = quantum;
            expect_sharded_parity(engine, 12, uniform_exponent(), point{11, -2}, 600,
                                  rng::seeded(seed * 7919), kNoCap, opts);
        }
    }
}

TEST_F(ShardEngineTest, StatsAccountForSpillsAndLoads) {
    sharded_walk_engine engine;
    shard_options opts = with_spill_dir({});
    opts.shards = 4;
    opts.memory_budget = 2 * walker_block::kBytesPerWalker;  // at most 2 resident walkers
    const parallel_result r = engine.run_parallel(8, fixed_exponent(2.5), point{200, 0}, 64,
                                                  rng::seeded(7), kNoCap, opts);
    EXPECT_FALSE(r.hit);
    const shard_run_stats& stats = engine.last_stats();
    EXPECT_GT(stats.rounds, 1u);
    EXPECT_GT(stats.spills, 0u);
    EXPECT_GT(stats.spilled_bytes, 0u);
    EXPECT_GT(stats.loads, 0u);  // evicted shards came back from disk
    EXPECT_EQ(stats.recomputed, 0u);
    EXPECT_EQ(stats.resumed, 0u);
    EXPECT_LE(stats.peak_resident_walkers, 8u);
    EXPECT_GE(stats.peak_resident_walkers, 2u);
    // Clean completion removes the trial's spill files.
    EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(ShardEngineTest, TrialDispatchRoutesShardedConfigs) {
    // parallel_walk_trial must route a sharded config through the sharded
    // engine and still agree bit-for-bit with the default in-memory path,
    // including watchdog censoring.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        parallel_walk_config p;
        p.k = 6;
        p.strategy = uniform_exponent();
        p.ell = 8;
        p.budget = 500;
        p.max_steps = 200;  // watchdog truncates: censoring must agree too
        const parallel_result base = parallel_walk_trial(p, rng::seeded(seed + 2000));
        p.shards = 3;
        p.spill_dir = dir_.string();
        const parallel_result sharded = parallel_walk_trial(p, rng::seeded(seed + 2000));
        EXPECT_EQ(base.hit, sharded.hit);
        EXPECT_EQ(base.time, sharded.time);
        EXPECT_EQ(base.winner, sharded.winner);
        EXPECT_EQ(base.censored, sharded.censored);
    }
}

TEST_F(ShardEngineTest, PooledEngineIsReusableAcrossConfigs) {
    // The pooled thread-local engine must give the same answers as a fresh
    // instance even when runs alternate caps and shard counts (cache churn).
    sharded_walk_engine& pooled = sharded_walk_engine::local();
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        for (const std::uint64_t cap : {kNoCap, std::uint64_t{16}}) {
            sharded_walk_engine fresh;
            shard_options opts = with_spill_dir({});
            opts.shards = 1 + seed % 4;
            const rng stream = rng::seeded(seed * 37 + cap % 97);
            const parallel_result a =
                fresh.run_parallel(9, fixed_exponent(2.6), point{4, 4}, 300, stream, cap, opts);
            const parallel_result b =
                pooled.run_parallel(9, fixed_exponent(2.6), point{4, 4}, 300, stream, cap, opts);
            EXPECT_EQ(a.hit, b.hit);
            EXPECT_EQ(a.time, b.time);
            EXPECT_EQ(a.winner, b.winner);
        }
    }
}

/// --- walker_block spill-format round trip --------------------------------

TEST(WalkerBlockSerialize, RoundTripIsBitExactMidPhase) {
    // Serialize a block suspended mid-phase (quantum 1 guarantees phase
    // residue), restore into a fresh block + cache, and re-serialize: the
    // bytes must match exactly, and both blocks must finish identically.
    dist_cache dists;
    dists.reset(kNoCap);
    walker_block block;
    const rng trial = rng::seeded(4242);
    for (std::size_t i = 0; i < 6; ++i) {
        rng stream = trial.substream(i);
        const double alpha = uniform_exponent()(i, stream);
        block.spawn(i, alpha, stream, dists);
    }
    const engine_options quantum1{.epoch_steps = 1};
    const point target{50, -3};
    best_state best;
    for (int e = 0; e < 5; ++e) block.epoch(quantum1, dists, target, 400, best);
    ASSERT_GT(block.live(), 0u);

    std::vector<char> bytes;
    block.serialize(dists, bytes);
    ASSERT_EQ(bytes.size(), block.live() * walker_block::kBytesPerWalker);

    dist_cache dists2;
    dists2.reset(kNoCap);
    walker_block restored;
    ASSERT_TRUE(restored.deserialize(bytes.data(), block.live(), dists2));
    EXPECT_EQ(restored.live(), block.live());
    std::vector<char> bytes2;
    restored.serialize(dists2, bytes2);
    EXPECT_EQ(bytes, bytes2);

    // Drive both to retirement from the restored point: identical lex-min.
    best_state best2 = best;
    while (block.live() > 0) block.epoch(quantum1, dists, target, 400, best);
    while (restored.live() > 0) restored.epoch(quantum1, dists2, target, 400, best2);
    EXPECT_EQ(best.hit, best2.hit);
    EXPECT_EQ(best.time, best2.time);
    EXPECT_EQ(best.winner, best2.winner);
}

TEST(WalkerBlockSerialize, RejectsStructurallyInvalidRecords) {
    dist_cache dists;
    dists.reset(kNoCap);
    walker_block block;
    rng stream = rng::seeded(11).substream(0);
    const double alpha = fixed_exponent(2.5)(0, stream);
    block.spawn(0, alpha, stream, dists);
    best_state best;
    block.epoch(engine_options{.epoch_steps = 1}, dists, point{90, 0}, 100, best);
    ASSERT_EQ(block.live(), 1u);
    std::vector<char> good;
    block.serialize(dists, good);
    ASSERT_EQ(good.size(), walker_block::kBytesPerWalker);

    const auto rejects = [&](std::size_t offset, const char* what) {
        std::vector<char> bad = good;
        for (std::size_t b = 0; b < 8; ++b) bad[offset + b] = 0;  // field := 0
        walker_block scratch;
        dist_cache scratch_dists;
        scratch_dists.reset(kNoCap);
        EXPECT_FALSE(scratch.deserialize(bad.data(), 1, scratch_dists)) << what;
        EXPECT_EQ(scratch.live(), 0u) << what;
    };
    rejects(8, "alpha bits = 0 (alpha must exceed 1)");
    rejects(160, "sx = 0 (axis signs must be +/-1)");
    // A valid record still restores after the rejections above.
    walker_block scratch;
    EXPECT_TRUE(scratch.deserialize(good.data(), 1, dists));
}

/// --- spill-file corruption property tests --------------------------------
///
/// Configuration chosen so the fault ordinal and file size are exact:
/// k = 4 walkers in 4 single-walker shards under a 300-byte budget means
/// only one shard stays resident, so shard 0 is evicted (spill ordinal 1)
/// while shard 1 advances in round 1, and reloaded at the top of round 2.
/// A single-walker spill file is 132 (header) + 224 (record) + 4 (body crc)
/// = 360 bytes; the tests sweep every one of those byte offsets. The far
/// target with a tiny budget keeps every trial an all-miss (so parity also
/// covers the NaN winner_alpha path) and the quantum-1 epochs keep shard 0
/// alive into round 2, where the corrupt file must be detected.
struct corruption_config {
    std::size_t k = 4;
    point target{1000, 0};
    std::uint64_t budget = 2;
    std::uint64_t cap = 8;
    rng stream = rng::seeded(60321);
};

constexpr std::size_t kOneWalkerSpillBytes = 132 + walker_block::kBytesPerWalker + 4;

shard_options corruption_options(const std::string& dir) {
    shard_options opts;
    opts.shards = 4;
    opts.memory_budget = 300;  // one resident walker (224 B) at a time
    opts.epoch_steps = 1;
    opts.spill_dir = dir;
    return opts;
}

TEST_F(ShardEngineTest, TornSpillByteAtEveryOffsetRecomputesOnlyThatShard) {
    const corruption_config cfg;
    walk_engine reference;
    const parallel_result base = reference.run_parallel(cfg.k, fixed_exponent(2.5), cfg.target,
                                                        cfg.budget, cfg.stream, cfg.cap);
    ASSERT_FALSE(base.hit);
    sharded_walk_engine engine;
    const shard_options opts = corruption_options(dir_.string());
    for (std::size_t offset = 0; offset < kOneWalkerSpillBytes; ++offset) {
        fault_plan plan;
        plan.torn_shard_spill = 1;  // shard 0's round-1 eviction
        plan.torn_shard_spill_offset = offset;
        install_fault_plan(plan);
        const parallel_result r = engine.run_parallel(cfg.k, fixed_exponent(2.5), cfg.target,
                                                      cfg.budget, cfg.stream, cfg.cap, opts);
        clear_fault_plan();
        ASSERT_EQ(base.hit, r.hit) << "offset=" << offset;
        ASSERT_EQ(base.time, r.time) << "offset=" << offset;
        ASSERT_EQ(base.winner, r.winner) << "offset=" << offset;
        ASSERT_TRUE(std::isnan(r.winner_alpha)) << "offset=" << offset;
        // Exactly the corrupted shard recomputes — never its neighbors.
        ASSERT_EQ(engine.last_stats().recomputed, 1u) << "offset=" << offset;
        ASSERT_EQ(engine.last_stats().resumed, 0u) << "offset=" << offset;
    }
}

TEST_F(ShardEngineTest, TruncatedSpillAtEveryLengthRecomputesOnlyThatShard) {
    const corruption_config cfg;
    walk_engine reference;
    const parallel_result base = reference.run_parallel(cfg.k, fixed_exponent(2.5), cfg.target,
                                                        cfg.budget, cfg.stream, cfg.cap);
    sharded_walk_engine engine;
    const shard_options opts = corruption_options(dir_.string());
    for (std::size_t length = 0; length < kOneWalkerSpillBytes; ++length) {
        fault_plan plan;
        plan.short_shard_spill = 1;  // shard 0's round-1 eviction
        plan.short_shard_spill_bytes = length;
        install_fault_plan(plan);
        const parallel_result r = engine.run_parallel(cfg.k, fixed_exponent(2.5), cfg.target,
                                                      cfg.budget, cfg.stream, cfg.cap, opts);
        clear_fault_plan();
        ASSERT_EQ(base.hit, r.hit) << "length=" << length;
        ASSERT_EQ(base.time, r.time) << "length=" << length;
        ASSERT_EQ(base.winner, r.winner) << "length=" << length;
        ASSERT_EQ(engine.last_stats().recomputed, 1u) << "length=" << length;
        ASSERT_EQ(engine.last_stats().resumed, 0u) << "length=" << length;
    }
}

TEST_F(ShardEngineTest, StaleSpillFromDifferentRunIsIgnoredWholesale) {
    // A shard file from a different run identity (here: different budget)
    // must be ignored and overwritten — recomputation is fine, wrong
    // results are not.
    const corruption_config cfg;
    sharded_walk_engine engine;
    const shard_options opts = corruption_options(dir_.string());
    const parallel_result first = engine.run_parallel(cfg.k, fixed_exponent(2.5), cfg.target,
                                                      cfg.budget, cfg.stream, cfg.cap, opts);
    // Plant garbage under the exact name the next run will probe
    // (shard-<hex16 seed>-<idx>of<count>; seed 60321 = 0xeba1).
    {
        std::ofstream out(dir_ / "shard-000000000000eba1-0of4.lvyshard", std::ios::binary);
        out << "not a shard file";
    }
    const parallel_result again = engine.run_parallel(cfg.k, fixed_exponent(2.5), cfg.target,
                                                      cfg.budget, cfg.stream, cfg.cap, opts);
    EXPECT_EQ(first.hit, again.hit);
    EXPECT_EQ(first.time, again.time);
    EXPECT_EQ(first.winner, again.winner);
}

}  // namespace
}  // namespace levy::sim
