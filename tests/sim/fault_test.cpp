#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <new>
#include <vector>

#include "src/sim/checkpoint.h"
#include "src/sim/fault.h"
#include "src/sim/monte_carlo.h"

namespace levy::sim {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the process clean: no plan installed, no pending
/// cancellation, no scratch directory — even when an assertion fails.
class FaultTest : public ::testing::Test {
protected:
    void SetUp() override {
        clear_fault_plan();
        clear_cancel();
        dir_ = fs::temp_directory_path() / "levy_fault_test";
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override {
        clear_fault_plan();
        clear_cancel();
        fs::remove_all(dir_);
    }

    [[nodiscard]] std::string file(const std::string& name) const {
        return (dir_ / name).string();
    }

    /// Checkpointed options used by all the crash/resume tests; interval 1
    /// so every completed trial is durable by the time a fault fires.
    [[nodiscard]] mc_options opts(const std::string& journal) const {
        mc_options o;
        o.trials = 64;
        o.threads = 2;
        o.seed = 0xfa017;
        o.checkpoint_path = file(journal);
        o.checkpoint_interval = 1;
        return o;
    }

    fs::path dir_;
};

std::uint64_t trial_value(std::size_t i, rng& g) { return g() ^ (i * 2654435761u); }

TEST_F(FaultTest, PlanActivationToggles) {
    EXPECT_FALSE(fault_plan_active());
    install_fault_plan(fault_plan{});
    EXPECT_TRUE(fault_plan_active());
    clear_fault_plan();
    EXPECT_FALSE(fault_plan_active());
    // With no plan installed the hooks are inert.
    fault_before_trial(0);
    fault_after_trial(0);
    std::vector<char> bytes(4, 'x');
    EXPECT_FALSE(fault_on_checkpoint_flush(0, bytes));
}

TEST_F(FaultTest, WorkerExceptionPropagatesThenResumeCompletes) {
    auto o = opts("throw.ckpt");
    mc_options plain = o;
    plain.checkpoint_path.clear();
    const auto reference = monte_carlo_collect(plain, trial_value);

    fault_plan plan;
    plan.throw_at_trial = 37;
    install_fault_plan(plan);
    EXPECT_THROW(monte_carlo_collect(o, trial_value), injected_fault);
    clear_fault_plan();

    // The journal kept the trials that finished before the fault…
    std::atomic<std::size_t> reruns{0};
    const auto resumed = monte_carlo_collect(o, [&](std::size_t i, rng& g) {
        reruns.fetch_add(1, std::memory_order_relaxed);
        return trial_value(i, g);
    });
    // …so the resume recomputes a strict subset and lands on the same bits.
    EXPECT_EQ(resumed, reference);
    EXPECT_LT(reruns.load(), o.trials);
    EXPECT_GE(reruns.load(), 1u);  // trial 37 itself never completed
}

TEST_F(FaultTest, SimulatedAllocationFailurePropagates) {
    fault_plan plan;
    plan.bad_alloc_at_trial = 5;
    install_fault_plan(plan);
    mc_options o;
    o.trials = 16;
    o.threads = 2;
    EXPECT_THROW(monte_carlo_collect(o, trial_value), std::bad_alloc);
}

TEST_F(FaultTest, CooperativeCancellationJournalsAndResumes) {
    auto o = opts("cancel.ckpt");
    mc_options plain = o;
    plain.checkpoint_path.clear();
    const auto reference = monte_carlo_collect(plain, trial_value);

    fault_plan plan;
    plan.cancel_after_trial = 9;  // SIGTERM equivalent, minus the signal
    install_fault_plan(plan);
    EXPECT_THROW(monte_carlo_collect(o, trial_value), run_cancelled);
    clear_fault_plan();
    clear_cancel();

    // Trial 9 completed before the cancel, so it must already be durable.
    const auto loaded = load_journal(
        o.checkpoint_path, journal_key{o.seed, o.trials, sizeof(std::uint64_t)});
    EXPECT_TRUE(loaded.matched);
    EXPECT_EQ(loaded.records.count(9), 1u);
    EXPECT_LT(loaded.records.size(), o.trials);

    EXPECT_EQ(monte_carlo_collect(o, trial_value), reference);
}

TEST_F(FaultTest, CancellationWithoutCheckpointStillRaises) {
    request_cancel();
    EXPECT_TRUE(cancel_requested());
    mc_options o;
    o.trials = 8;
    o.threads = 1;
    EXPECT_THROW(monte_carlo_collect(o, trial_value), run_cancelled);
    clear_cancel();
    EXPECT_FALSE(cancel_requested());
}

TEST_F(FaultTest, TornWriteSurvivesOnDiskAndNextRunRecovers) {
    auto o = opts("torn.ckpt");
    mc_options plain = o;
    plain.checkpoint_path.clear();
    const auto reference = monte_carlo_collect(plain, trial_value);

    fault_plan plan;
    plan.torn_write_flush = 3;
    plan.torn_write_offset = 50;  // lands inside some record
    install_fault_plan(plan);
    // The run itself still completes — the journal plays dead after the
    // corrupted flush, exactly like a disk going bad under a live process.
    EXPECT_EQ(monte_carlo_collect(o, trial_value), reference);
    clear_fault_plan();

    // The corruption is really on disk: the loader drops the bad tail.
    const journal_key key{o.seed, o.trials, sizeof(std::uint64_t)};
    const auto loaded = load_journal(o.checkpoint_path, key);
    EXPECT_TRUE(loaded.dropped_tail || !loaded.matched);
    EXPECT_LT(loaded.records.size(), o.trials);

    // And the next run recomputes whatever was lost, bit-identically.
    EXPECT_EQ(monte_carlo_collect(o, trial_value), reference);
    const auto repaired = load_journal(o.checkpoint_path, key);
    EXPECT_TRUE(repaired.matched);
    EXPECT_FALSE(repaired.dropped_tail);
    EXPECT_EQ(repaired.records.size(), o.trials);
}

TEST_F(FaultTest, ShortWriteSurvivesOnDiskAndNextRunRecovers) {
    auto o = opts("short.ckpt");
    mc_options plain = o;
    plain.checkpoint_path.clear();
    const auto reference = monte_carlo_collect(plain, trial_value);

    fault_plan plan;
    plan.short_write_flush = 2;
    plan.short_write_bytes = 20;  // even the header is cut short
    install_fault_plan(plan);
    EXPECT_EQ(monte_carlo_collect(o, trial_value), reference);
    clear_fault_plan();

    EXPECT_EQ(monte_carlo_collect(o, trial_value), reference);
}

}  // namespace
}  // namespace levy::sim
