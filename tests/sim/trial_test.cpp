#include <gtest/gtest.h>

#include "src/sim/trial.h"

namespace levy::sim {
namespace {

TEST(TargetAt, LiesOnPositiveXAxis) {
    EXPECT_EQ(target_at(5), (point{5, 0}));
    EXPECT_EQ(l1_norm(target_at(123)), 123);
}

TEST(SingleWalkTrial, DeterministicGivenStream) {
    const single_walk_config cfg{.alpha = 2.5, .ell = 10, .budget = 2000};
    const auto a = single_walk_trial(cfg, rng::seeded(1));
    const auto b = single_walk_trial(cfg, rng::seeded(1));
    EXPECT_EQ(a, b);
}

TEST(SingleWalkTrial, RespectsBudget) {
    const single_walk_config cfg{.alpha = 2.5, .ell = 1000000, .budget = 100};
    const auto r = single_walk_trial(cfg, rng::seeded(2));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.time, 100u);
}

TEST(SingleHitProbability, ZeroBudgetMeansZeroHits) {
    const single_walk_config cfg{.alpha = 2.5, .ell = 5, .budget = 0};
    const auto p = single_hit_probability(cfg, {.trials = 50, .threads = 1, .seed = 1});
    EXPECT_EQ(p.successes, 0u);
}

TEST(SingleHitProbability, GenerousBudgetHitsSometimes) {
    const single_walk_config cfg{.alpha = 2.5, .ell = 4, .budget = 5000};
    const auto p = single_hit_probability(cfg, {.trials = 200, .threads = 0, .seed = 2});
    EXPECT_GT(p.successes, 0u);
}

TEST(FlightTrial, TimeCountsJumpsNotLatticeSteps) {
    // A flight reaches L1 distance ~ℓ in far fewer time steps than a walk:
    // with budget = 50 jumps it can land on a node 100 away, which a walk
    // could never reach in 50 unit steps.
    const single_walk_config cfg{.alpha = 2.01, .ell = 100, .budget = 50};
    int flight_hits = 0;
    for (std::uint64_t s = 0; s < 4000; ++s) {
        flight_hits += single_flight_trial(cfg, rng::seeded(s)).hit;
        ASSERT_FALSE(single_walk_trial(cfg, rng::seeded(s)).hit);
    }
    // Not asserting flight_hits > 0 (the event is rare); the walk assertions
    // above are the point. Keep the counter used.
    EXPECT_GE(flight_hits, 0);
}

TEST(ParallelWalkTrial, DeterministicGivenStream) {
    parallel_walk_config cfg;
    cfg.k = 4;
    cfg.strategy = uniform_exponent();
    cfg.ell = 8;
    cfg.budget = 3000;
    const auto a = parallel_walk_trial(cfg, rng::seeded(5));
    const auto b = parallel_walk_trial(cfg, rng::seeded(5));
    EXPECT_EQ(a.hit, b.hit);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.winner, b.winner);
}

TEST(ParallelHitProbability, MoreAgentsNeverHurt) {
    parallel_walk_config small, large;
    small.k = 1;
    large.k = 16;
    small.strategy = large.strategy = fixed_exponent(2.5);
    small.ell = large.ell = 16;
    small.budget = large.budget = 1000;
    const mc_options opts{.trials = 300, .threads = 0, .seed = 6};
    const auto ps = parallel_hit_probability(small, opts);
    const auto pl = parallel_hit_probability(large, opts);
    EXPECT_GE(pl.successes, ps.successes);
}

TEST(ParallelHittingTimes, CensorsMissesAtBudget) {
    parallel_walk_config cfg;
    cfg.k = 2;
    cfg.strategy = fixed_exponent(2.5);
    cfg.ell = 100000;  // unreachable within budget
    cfg.budget = 50;
    const auto sample = parallel_hitting_times(cfg, {.trials = 20, .threads = 1, .seed = 7});
    EXPECT_EQ(sample.hits, 0u);
    EXPECT_DOUBLE_EQ(sample.hit_fraction(), 0.0);
    for (double t : sample.times) EXPECT_DOUBLE_EQ(t, 50.0);
}

TEST(Watchdog, MaxStepsTruncatesAndMarksCensored) {
    single_walk_config cfg{.alpha = 2.5, .ell = 1000000, .budget = 10000};
    cfg.max_steps = 64;
    const auto r = single_walk_trial(cfg, rng::seeded(3));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.time, 64u);
    EXPECT_TRUE(r.censored);
    // Without the cap the same trial runs its full budget, uncensored.
    cfg.max_steps = 0;
    const auto full = single_walk_trial(cfg, rng::seeded(3));
    EXPECT_EQ(full.time, 10000u);
    EXPECT_FALSE(full.censored);
    // A cap at or above the budget changes nothing — not even the flag.
    cfg.max_steps = 10000;
    EXPECT_EQ(single_walk_trial(cfg, rng::seeded(3)), full);
}

TEST(Watchdog, CensoredCountFlowsIntoSampleAndMetrics) {
    reset_metrics();
    parallel_walk_config cfg;
    cfg.k = 2;
    cfg.strategy = fixed_exponent(2.5);
    cfg.ell = 100000;  // unreachable: every truncated trial is censored
    cfg.budget = 500;
    cfg.max_steps = 40;
    const auto sample = parallel_hitting_times(cfg, {.trials = 20, .threads = 1, .seed = 9});
    EXPECT_EQ(sample.censored, 20u);
    EXPECT_DOUBLE_EQ(sample.censored_fraction(), 1.0);
    for (double t : sample.times) EXPECT_DOUBLE_EQ(t, 40.0);
    EXPECT_EQ(metrics_snapshot().censored, 20u);
    reset_metrics();
}

TEST(Watchdog, UntruncatedTrialsAreNotCensored) {
    parallel_walk_config cfg;
    cfg.k = 8;
    cfg.strategy = fixed_exponent(2.3);
    cfg.ell = 6;
    cfg.budget = 2000;
    cfg.max_steps = 2000;  // cap == budget: nothing is truncated
    const auto sample = parallel_hitting_times(cfg, {.trials = 50, .threads = 1, .seed = 10});
    EXPECT_EQ(sample.censored, 0u);
    EXPECT_DOUBLE_EQ(sample.censored_fraction(), 0.0);
}

TEST(ParallelHittingTimes, HitFractionMatchesCounts) {
    parallel_walk_config cfg;
    cfg.k = 8;
    cfg.strategy = fixed_exponent(2.3);
    cfg.ell = 6;
    cfg.budget = 2000;
    const auto sample = parallel_hitting_times(cfg, {.trials = 100, .threads = 0, .seed = 8});
    EXPECT_EQ(sample.times.size(), 100u);
    EXPECT_GT(sample.hits, 0u);
    EXPECT_NEAR(sample.hit_fraction(), static_cast<double>(sample.hits) / 100.0, 1e-12);
}

}  // namespace
}  // namespace levy::sim
