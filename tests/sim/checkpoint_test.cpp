#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/sim/checkpoint.h"
#include "src/sim/fault.h"
#include "src/sim/monte_carlo.h"

namespace levy::sim {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per fixture; removed on teardown.
class CheckpointTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "levy_checkpoint_test";
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    [[nodiscard]] std::string file(const std::string& name) const {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

std::vector<char> read_all(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_all(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

TEST(Crc32, MatchesIeeeCheckValue) {
    // The standard CRC-32 check value: crc of the ASCII digits "123456789".
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32("", 0), 0u);
    // Any single-bit flip must change the checksum (spot check).
    std::string s = "123456789";
    s[4] ^= 0x10;
    EXPECT_NE(crc32(s.data(), s.size()), 0xCBF43926u);
}

TEST_F(CheckpointTest, AtomicWriteRoundTripsAndLeavesNoTemp) {
    const std::string path = file("blob.bin");
    const std::vector<char> payload = {'a', 'b', '\0', 'c'};
    atomic_write_file(path, payload);
    EXPECT_EQ(read_all(path), payload);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    // Overwrite is atomic too: the new content fully replaces the old.
    const std::vector<char> next(1000, 'x');
    atomic_write_file(path, next);
    EXPECT_EQ(read_all(path), next);
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(CheckpointTest, AtomicWriteFsyncsTheParentDirectory) {
    // Regression: rename alone does not make the new directory entry
    // durable on POSIX — atomic_write_file must fsync the parent directory
    // after the rename, or a power cut can forget a "committed" checkpoint.
    // The counter is bumped by the production code path itself (see
    // note_dir_fsync), so this fails against a build that skips the fsync.
    const std::uint64_t before = dir_fsync_count();
    atomic_write_file(file("durable.bin"), std::vector<char>{'h', 'i'});
    EXPECT_GT(dir_fsync_count(), before);
}
#endif

TEST_F(CheckpointTest, MissingFileIsUnmatched) {
    const auto loaded = load_journal(file("absent.ckpt"), journal_key{1, 2, 8});
    EXPECT_FALSE(loaded.matched);
    EXPECT_TRUE(loaded.records.empty());
    EXPECT_FALSE(loaded.dropped_tail);
}

TEST_F(CheckpointTest, JournalRoundTrip) {
    const std::string path = file("rt.ckpt");
    const journal_key key{0xabcdef, 10, sizeof(std::uint64_t)};
    {
        trial_journal j(path, key, /*interval_trials=*/1, /*interval_seconds=*/3600);
        std::vector<std::uint64_t> results(key.trials, 0);
        EXPECT_EQ(j.restore(results.data()).size(), key.trials);
        for (std::uint64_t i : {0u, 5u, 7u}) {
            const std::uint64_t payload = i * 0x0101010101010101ULL + 1;
            j.record(i, &payload);
        }
        j.commit();
        EXPECT_EQ(j.completed(), 3u);
    }
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    const auto loaded = load_journal(path, key);
    EXPECT_TRUE(loaded.matched);
    EXPECT_FALSE(loaded.dropped_tail);
    ASSERT_EQ(loaded.records.size(), 3u);
    for (std::uint64_t i : {0u, 5u, 7u}) {
        const std::uint64_t expect = i * 0x0101010101010101ULL + 1;
        std::uint64_t got = 0;
        ASSERT_EQ(loaded.records.at(i).size(), sizeof(got));
        std::memcpy(&got, loaded.records.at(i).data(), sizeof(got));
        EXPECT_EQ(got, expect) << "trial " << i;
    }

    // A second journal resumes: restore fills the recovered slots and
    // reports exactly the complement as missing.
    trial_journal j2(path, key, 1, 3600);
    std::vector<std::uint64_t> results(key.trials, 0);
    const auto missing = j2.restore(results.data());
    EXPECT_EQ(missing, (std::vector<std::size_t>{1, 2, 3, 4, 6, 8, 9}));
    EXPECT_EQ(results[5], 5 * 0x0101010101010101ULL + 1);
    EXPECT_EQ(results[1], 0u);
}

TEST_F(CheckpointTest, KeyMismatchIsIgnored) {
    const std::string path = file("key.ckpt");
    const journal_key key{7, 4, sizeof(std::uint64_t)};
    {
        trial_journal j(path, key, 1, 3600);
        const std::uint64_t payload = 99;
        j.record(0, &payload);
        j.commit();
    }
    for (const journal_key other : {journal_key{8, 4, 8}, journal_key{7, 5, 8},
                                    journal_key{7, 4, 4}}) {
        const auto loaded = load_journal(path, other);
        EXPECT_FALSE(loaded.matched);
        EXPECT_TRUE(loaded.records.empty());
    }
}

TEST_F(CheckpointTest, ResumeSkipsCompletedTrials) {
    mc_options opts;
    opts.trials = 100;
    opts.threads = 2;
    opts.seed = 42;
    opts.checkpoint_path = file("resume.ckpt");
    opts.checkpoint_interval = 1;
    std::atomic<std::size_t> calls{0};
    const auto fn = [&calls](std::size_t i, rng& g) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return g() ^ i;
    };
    const auto first = monte_carlo_collect(opts, fn);
    EXPECT_EQ(calls.load(), opts.trials);
    // Rerun: everything replays from the journal, nothing recomputes.
    const auto second = monte_carlo_collect(opts, fn);
    EXPECT_EQ(calls.load(), opts.trials);
    EXPECT_EQ(second, first);
    // And the replayed run matches a journal-free run bit for bit.
    mc_options plain = opts;
    plain.checkpoint_path.clear();
    EXPECT_EQ(monte_carlo_collect(plain, fn), first);
}

/// Ground truth for the corruption property tests below: a complete
/// journal plus the payload every index must decode to.
struct truth {
    std::vector<char> bytes;
    std::map<std::uint64_t, std::uint64_t> payloads;
    journal_key key;
};

truth make_truth(const std::string& path) {
    truth t;
    t.key = journal_key{0x5eed, 24, sizeof(std::uint64_t)};
    trial_journal j(path, t.key, 1, 3600);
    for (std::uint64_t i = 0; i < t.key.trials; ++i) {
        const std::uint64_t payload = (i + 1) * 0x9e3779b97f4a7c15ULL;
        t.payloads[i] = payload;
        j.record(i, &payload);
    }
    j.commit();
    t.bytes = read_all(path);
    return t;
}

/// Whatever survives loading must agree with the ground truth — corruption
/// may shrink the recovered set, never corrupt a value.
void expect_subset_of_truth(const journal_contents& loaded, const truth& t) {
    for (const auto& [index, payload] : loaded.records) {
        ASSERT_LT(index, t.key.trials);
        ASSERT_EQ(payload.size(), sizeof(std::uint64_t));
        std::uint64_t got = 0;
        std::memcpy(&got, payload.data(), sizeof(got));
        EXPECT_EQ(got, t.payloads.at(index)) << "index " << index;
    }
}

TEST_F(CheckpointTest, TruncationAtEveryByteOffsetNeverCorrupts) {
    const std::string path = file("trunc.ckpt");
    const truth t = make_truth(path);
    ASSERT_GT(t.bytes.size(), 100u);
    for (std::size_t len = 0; len < t.bytes.size(); ++len) {
        write_all(path, std::vector<char>(t.bytes.begin(),
                                          t.bytes.begin() + static_cast<std::ptrdiff_t>(len)));
        const auto loaded = load_journal(path, t.key);
        expect_subset_of_truth(loaded, t);
        // A cut on a record boundary just looks like an earlier flush; any
        // other cut must be reported so the driver can announce recovery.
        constexpr std::size_t kHeader = 36, kRecord = 8 + 8 + 4;
        const bool on_boundary = len >= kHeader && (len - kHeader) % kRecord == 0;
        if (loaded.matched) {
            EXPECT_EQ(loaded.dropped_tail, !on_boundary) << "len " << len;
        } else {
            EXPECT_TRUE(loaded.records.empty());
        }
    }
}

TEST_F(CheckpointTest, BitFlipAtEveryByteOffsetNeverCorrupts) {
    const std::string path = file("flip.ckpt");
    const truth t = make_truth(path);
    for (std::size_t off = 0; off < t.bytes.size(); ++off) {
        std::vector<char> mutated = t.bytes;
        mutated[off] = static_cast<char>(mutated[off] ^ 0x04);
        write_all(path, mutated);
        const auto loaded = load_journal(path, t.key);
        // CRC-32 detects every single-bit error: the flipped record (or the
        // header) must drop out; everything recovered is still exact.
        expect_subset_of_truth(loaded, t);
        EXPECT_LT(loaded.records.size(), t.key.trials);
        if (!loaded.matched) {
            EXPECT_TRUE(loaded.records.empty());
        }
    }
}

TEST_F(CheckpointTest, ResumeFromTruncatedJournalRecomputesTail) {
    mc_options opts;
    opts.trials = 40;
    opts.threads = 1;
    opts.seed = 3;
    opts.checkpoint_path = file("tail.ckpt");
    opts.checkpoint_interval = 1;
    const auto fn = [](std::size_t i, rng& g) { return g() + i; };
    const auto reference = monte_carlo_collect(opts, fn);
    // Chop the journal mid-record; a resume must still match the reference.
    auto bytes = read_all(opts.checkpoint_path);
    bytes.resize(bytes.size() / 2 + 3);
    write_all(opts.checkpoint_path, bytes);
    EXPECT_EQ(monte_carlo_collect(opts, fn), reference);
    // The rewritten journal is whole again.
    const auto loaded =
        load_journal(opts.checkpoint_path,
                     journal_key{opts.seed, opts.trials, sizeof(reference[0])});
    EXPECT_TRUE(loaded.matched);
    EXPECT_EQ(loaded.records.size(), opts.trials);
}

}  // namespace
}  // namespace levy::sim
