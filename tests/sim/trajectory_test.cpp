#include <gtest/gtest.h>

#include "src/baselines/simple_random_walk.h"
#include "src/core/levy_walk.h"
#include "src/sim/trajectory.h"

namespace levy::sim {
namespace {

TEST(Displacement, MaxDominatesFinal) {
    levy_walk w(2.2, rng::seeded(1));
    const auto d = run_displacement(w, 5000);
    EXPECT_EQ(d.steps, 5000u);
    EXPECT_GE(d.max_l1, d.final_l1);
    EXPECT_GE(d.final_l1, 0);
}

TEST(Displacement, BoundedByStepCount) {
    // A walk moves at most one unit per step.
    levy_walk w(1.5, rng::seeded(2));
    const auto d = run_displacement(w, 1234);
    EXPECT_LE(d.max_l1, 1234);
}

TEST(Displacement, MeasuredFromProcessStartNode) {
    levy_walk w(2.5, rng::seeded(3), {100, 100});
    const auto d = run_displacement(w, 100);
    EXPECT_LE(d.max_l1, 100);  // relative to (100,100), not the origin
}

TEST(CountVisits, AgreesWithCensus) {
    levy_walk w1(2.3, rng::seeded(4));
    levy_walk w2(2.3, rng::seeded(4));
    const point probe{1, 0};
    const std::uint64_t t = 20000;
    const std::uint64_t direct = count_visits(w1, probe, t);
    auto census = visit_census(w2, t);
    EXPECT_EQ(direct, census[probe]);
}

TEST(CountVisits, CensusTotalsMatchSteps) {
    levy_walk w(2.5, rng::seeded(5));
    const std::uint64_t t = 5000;
    const auto census = visit_census(w, t);
    std::uint64_t total = 0;
    for (const auto& [p, c] : census) total += c;
    EXPECT_EQ(total, t);
}

TEST(RecordTrajectory, LengthAndContinuity) {
    levy_walk w(2.0, rng::seeded(6));
    const auto traj = record_trajectory(w, 300);
    ASSERT_EQ(traj.size(), 301u);
    EXPECT_EQ(traj.front(), origin);
    for (std::size_t i = 0; i + 1 < traj.size(); ++i) {
        ASSERT_LE(l1_distance(traj[i], traj[i + 1]), 1);
    }
}

TEST(RecordTrajectory, WorksForBaselines) {
    baselines::simple_random_walk srw(rng::seeded(7));
    const auto traj = record_trajectory(srw, 50);
    ASSERT_EQ(traj.size(), 51u);
    for (std::size_t i = 0; i + 1 < traj.size(); ++i) {
        ASSERT_EQ(l1_distance(traj[i], traj[i + 1]), 1);  // SRW never stays put
    }
}

TEST(Displacement, SuperdiffusiveSpreadsFasterThanDiffusive) {
    // Shape check at matched budgets: α = 2.1 walks reach much farther than
    // α = 5 walks. Averaged over trials to damp variance.
    const std::uint64_t t = 3000;
    const int trials = 100;
    double super = 0.0, diff = 0.0;
    for (int i = 0; i < trials; ++i) {
        levy_walk ws(2.1, rng::seeded(1000 + static_cast<std::uint64_t>(i)));
        levy_walk wd(5.0, rng::seeded(2000 + static_cast<std::uint64_t>(i)));
        super += static_cast<double>(run_displacement(ws, t).max_l1);
        diff += static_cast<double>(run_displacement(wd, t).max_l1);
    }
    EXPECT_GT(super / trials, 2.0 * diff / trials);
}

}  // namespace
}  // namespace levy::sim
