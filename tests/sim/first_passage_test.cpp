#include <gtest/gtest.h>

#include "src/baselines/ballistic_walk.h"
#include "src/baselines/simple_random_walk.h"
#include "src/core/levy_walk.h"
#include "src/sim/trajectory.h"

namespace levy::sim {
namespace {

TEST(FirstPassage, ZeroRadiusIsImmediate) {
    levy_walk w(2.5, rng::seeded(1));
    const auto r = first_passage_radius(w, 0, 100);
    EXPECT_TRUE(r.reached);
    EXPECT_EQ(r.time, 0u);
    EXPECT_EQ(w.steps(), 0u);
}

TEST(FirstPassage, WalkNeedsAtLeastRadiusSteps) {
    // A walk moves one unit per step: reaching radius r needs >= r steps.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        levy_walk w(1.8, rng::seeded(seed));
        const auto r = first_passage_radius(w, 25, 100000);
        ASSERT_TRUE(r.reached);
        EXPECT_GE(r.time, 25u);
        EXPECT_GE(l1_norm(w.position()), 25);
    }
}

TEST(FirstPassage, BallisticReachesExactlyAtRadius) {
    baselines::ballistic_walk w(rng::seeded(3));
    const auto r = first_passage_radius(w, 1000, 10000);
    ASSERT_TRUE(r.reached);
    EXPECT_EQ(r.time, 1000u);  // every step makes L1 progress
}

TEST(FirstPassage, BudgetExhaustionReported) {
    baselines::simple_random_walk w(rng::seeded(4));
    const auto r = first_passage_radius(w, 1000000, 50);
    EXPECT_FALSE(r.reached);
    EXPECT_EQ(r.time, 50u);
}

TEST(FirstPassage, MeasuredFromStartNotOrigin) {
    levy_walk w(2.0, rng::seeded(5), {500, 500});
    const auto r = first_passage_radius(w, 10, 100000);
    ASSERT_TRUE(r.reached);
    EXPECT_GE(l1_distance(w.position(), {500, 500}), 10);
}

TEST(FirstPassage, SuperdiffusiveEscapesFasterThanDiffusive) {
    // Median escape time from radius 64: α = 2.1 ≪ α = 4 (the t_i vs λ_i
    // machinery of Lemma 3.11 in miniature).
    const std::int64_t radius = 64;
    std::uint64_t super_total = 0, diff_total = 0;
    const int trials = 60;
    for (int i = 0; i < trials; ++i) {
        levy_walk ws(2.1, rng::seeded(100 + static_cast<std::uint64_t>(i)));
        levy_walk wd(4.0, rng::seeded(200 + static_cast<std::uint64_t>(i)));
        super_total += first_passage_radius(ws, radius, 1000000).time;
        diff_total += first_passage_radius(wd, radius, 1000000).time;
    }
    EXPECT_LT(super_total, diff_total / 2);
}

}  // namespace
}  // namespace levy::sim
