# bench_smoke.cmake — run every experiment binary at tiny smoke settings
# with --json-dir, then validate the BENCH_*.json documents with
# `levyreport --check`. Registered as the tier-1 ctest `bench_json_smoke`:
#
#   cmake -DBENCH_DIR=<build>/bench -DLEVYREPORT=<build>/tools/levyreport \
#         -DOUT_DIR=<scratch> -P bench_smoke.cmake
#
# Per-bench trial/scale overrides keep each run fast while staying above
# the floor its regression fits need (a fit over all-zero hit counts has
# <2 points and the bench aborts loudly — the right behavior, so the smoke
# settings are tuned per bench instead of silencing the guard).

foreach(var BENCH_DIR LEVYREPORT OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke.cmake: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

set(benches
  e1_superdiffusive_hit e2_early_hitting e3_eventual_hit e4_diffusive_hit
  e5_ballistic_hit e6_optimal_alpha e7_parallel_scaling e8_random_exponent
  e9_ants_baselines e10_monotonicity e11_origin_visits e12_distributions
  e13_displacement e14_kleinberg e15_micro e16_intermittent e17_foraging
  e18_strategy_ablation e19_torus_cauchy e20_first_passage
  e21_exact_occupancy e22_advice_tradeoff e23_serve_load
  e24_billion_walkers)

set(default_args --trials=50 --scale=0.25)
# E1/E2: hit probabilities are tiny, the log-log fit needs >=2 budgets with
# at least one hit each. E12: the jump-tail histogram fit needs a dense
# sample. E15: Google Benchmark; one representative micro-benchmark. E21 is
# an exact DP that ignores trials/scale.
set(args_e1_superdiffusive_hit --trials=500 --scale=0.25)
set(args_e2_early_hitting --trials=1000 --scale=0.05)
set(args_e12_distributions --trials=20000 --scale=0.25)
set(args_e15_micro --benchmark_filter=BM_Xoshiro)
# E24: out-of-core sweep; tiny trial count, scale keeps k <= 4096 while the
# default memory budget still forces spill/reload traffic.
set(args_e24_billion_walkers --trials=2 --scale=0.25)

foreach(bench IN LISTS benches)
  set(exe "${BENCH_DIR}/bench_${bench}")
  if(DEFINED args_${bench})
    set(args ${args_${bench}})
  else()
    set(args ${default_args})
  endif()
  execute_process(
    COMMAND "${exe}" ${args} --json-dir=${OUT_DIR}
    OUTPUT_QUIET
    RESULT_VARIABLE status)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "bench_${bench} ${args} failed with status ${status}")
  endif()
endforeach()

execute_process(
  COMMAND "${LEVYREPORT}" --check "${OUT_DIR}"
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "levyreport --check found invalid documents in ${OUT_DIR}")
endif()

# The summary table doubles as a human-readable smoke log in the ctest
# output (and exercises the non-check reporting path).
execute_process(
  COMMAND "${LEVYREPORT}" "${OUT_DIR}"
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "levyreport summary failed for ${OUT_DIR}")
endif()
