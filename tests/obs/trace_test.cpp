#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/trace.h"

namespace levy::obs {
namespace {

class TraceTest : public ::testing::Test {
protected:
    void TearDown() override { stop_span_collection(); }
};

TEST_F(TraceTest, DisabledCollectionRecordsNothing) {
    stop_span_collection();
    {
        LEVY_SPAN("ignored");
    }
    start_span_collection();  // clears the store
    stop_span_collection();
    EXPECT_TRUE(collected_spans().empty());
}

TEST_F(TraceTest, SpansRecordNameAndNesting) {
    start_span_collection();
    {
        LEVY_SPAN("outer");
        {
            LEVY_SPAN("inner");
        }
    }
    stop_span_collection();
    const auto spans = collected_spans();
    ASSERT_EQ(spans.size(), 2u);
    // Completion order: inner closes first.
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].depth, 1u);
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].depth, 0u);
    EXPECT_GE(spans[1].wall_seconds, spans[0].wall_seconds);
    EXPECT_GE(spans[0].start_seconds, 0.0);
}

TEST_F(TraceTest, RestartClearsPriorSpans) {
    start_span_collection();
    {
        LEVY_SPAN("first");
    }
    start_span_collection();
    {
        LEVY_SPAN("second");
    }
    stop_span_collection();
    const auto spans = collected_spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "second");
}

TEST_F(TraceTest, ChromeTraceFileIsValidJson) {
    start_span_collection();
    {
        LEVY_SPAN("phase_a");
    }
    {
        LEVY_SPAN("phase_b");
    }
    stop_span_collection();

    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / "levy_trace_test.json";
    write_chrome_trace(path.string());
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const json doc = json::parse(ss.str());
    const json& events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 2u);
    for (const json& ev : events.elements()) {
        EXPECT_EQ(ev.at("ph").as_string(), "X");
        EXPECT_TRUE(ev.at("ts").is_number());
        EXPECT_GE(ev.at("dur").as_number(), 0.0);
        EXPECT_TRUE(ev.at("args").at("busy_seconds").is_number());
    }
    EXPECT_EQ(events.at(0).at("name").as_string(), "phase_a");
    std::filesystem::remove(path);
}

}  // namespace
}  // namespace levy::obs
