#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/stats/table.h"

namespace levy::obs {
namespace {

sim::run_metrics fake_metrics() {
    sim::run_metrics m;
    m.trials = 1000;
    m.wall_seconds = 2.0;
    m.busy_seconds = 6.0;
    m.max_workers = 4;
    m.censored = 3;
    return m;
}

class ReportTest : public ::testing::Test {
protected:
    void SetUp() override { reset_metrics_registry(); }
    void TearDown() override { end_report(); }
};

TEST_F(ReportTest, BuildsSchemaV1Document) {
    begin_report("E99", {{"trials", "1000"}, {"seed", "0x2a"}});
    get_counter("report_test.counter").add(5);
    set_gauge("report_test.gauge", 1.25);

    stats::text_table table({"ell", "paper"});
    table.add_row({"64", "0.5"});
    table.add_separator();
    table.add_row({"128", "0.25"});
    std::ostringstream sink;
    table.print(sink);  // the installed observer captures these rows

    const json doc = build_report(fake_metrics());
    EXPECT_TRUE(validate_bench_json(doc).empty())
        << json(validate_bench_json(doc).front()).dump();
    EXPECT_EQ(doc.at("schema").as_string(), "levy-bench");
    EXPECT_DOUBLE_EQ(doc.at("version").as_number(), 1.0);
    EXPECT_EQ(doc.at("experiment").as_string(), "E99");
    EXPECT_EQ(doc.at("options").at("trials").as_string(), "1000");
    ASSERT_EQ(doc.at("rows").size(), 2u);  // separator is not a row
    EXPECT_EQ(doc.at("rows").at(1).at("values").at("ell").as_string(), "128");
    const json& metrics = doc.at("metrics");
    EXPECT_DOUBLE_EQ(metrics.at("trials").as_number(), 1000.0);
    EXPECT_DOUBLE_EQ(metrics.at("trials_per_sec").as_number(), 500.0);
    EXPECT_DOUBLE_EQ(metrics.at("utilization").as_number(), 0.75);
    EXPECT_DOUBLE_EQ(metrics.at("censored").as_number(), 3.0);
    EXPECT_DOUBLE_EQ(metrics.at("counters").at("report_test.counter").as_number(), 5.0);
    EXPECT_DOUBLE_EQ(metrics.at("gauges").at("report_test.gauge").as_number(), 1.25);
}

TEST_F(ReportTest, UtilizationIsNullWithoutCapacity) {
    begin_report("E99", {});
    const json doc = build_report(sim::run_metrics{});
    EXPECT_TRUE(doc.at("metrics").at("utilization").is_null());
    EXPECT_TRUE(validate_bench_json(doc).empty());
}

TEST_F(ReportTest, TablesPrintedAfterEndAreNotCaptured) {
    begin_report("E99", {});
    end_report();
    stats::text_table table({"col"});
    table.add_row({"x"});
    std::ostringstream sink;
    table.print(sink);
    begin_report("E99", {});
    EXPECT_EQ(build_report(fake_metrics()).at("rows").size(), 0u);
}

TEST_F(ReportTest, WriteReportLandsParseableFile) {
    begin_report("E98", {{"trials", "10"}});
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / "levy_report_test.json";
    write_report(path.string(), fake_metrics());
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const json doc = json::parse(ss.str());
    EXPECT_TRUE(validate_bench_json(doc).empty());
    EXPECT_EQ(doc.at("experiment").as_string(), "E98");
    EXPECT_FALSE(doc.at("git_describe").as_string().empty());
    std::filesystem::remove(path);
}

TEST_F(ReportTest, ValidatorFlagsBrokenDocuments) {
    EXPECT_FALSE(validate_bench_json(json(1.0)).empty());
    EXPECT_FALSE(validate_bench_json(json::object()).empty());

    json doc = json::object();
    doc.set("schema", "levy-bench");
    doc.set("version", 2);  // wrong version
    doc.set("experiment", "");
    doc.set("git_describe", "abc");
    doc.set("options", json::object());
    doc.set("rows", json::array());
    json metrics = json::object();
    metrics.set("trials", 1);
    metrics.set("trials_per_sec", 1.0);
    metrics.set("utilization", "high");  // wrong type
    metrics.set("censored", 0);
    metrics.set("per_phase_spans", json::array());
    doc.set("metrics", std::move(metrics));
    const auto errors = validate_bench_json(doc);
    EXPECT_EQ(errors.size(), 3u);  // version, experiment, utilization
}

TEST_F(ReportTest, UnknownKeysAreAllowed) {
    begin_report("E97", {});
    json doc = build_report(fake_metrics());
    doc.set("added_in_v1_patch", "ignored by older readers");
    EXPECT_TRUE(validate_bench_json(doc).empty());
}

}  // namespace
}  // namespace levy::obs
