#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/sim/monte_carlo.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define LEVY_TEST_HAVE_SOCKETS 1
#else
#define LEVY_TEST_HAVE_SOCKETS 0
#endif

namespace levy::obs {
namespace {

class ExporterTest : public ::testing::Test {
protected:
    void SetUp() override {
        stop_metrics_exporter();
        reset_metrics_registry();
        sim::reset_metrics();
    }
    void TearDown() override { stop_metrics_exporter(); }
};

bool valid_prom_name(const std::string& name) {
    if (name.empty()) return false;
    const auto head = static_cast<unsigned char>(name[0]);
    if (!(std::isalpha(head) != 0 || name[0] == '_' || name[0] == ':')) return false;
    for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':')) {
            return false;
        }
    }
    return true;
}

/// Minimal parser for the text exposition format: checks line grammar, TYPE
/// declarations, counter naming, and histogram bucket monotonicity — the
/// invariants a real Prometheus scraper relies on.
void parse_exposition(const std::string& text) {
    std::map<std::string, std::string> types;            // family -> type
    std::map<std::string, double> last_bucket;           // family -> prev cumulative
    std::map<std::string, double> inf_bucket;            // family -> le=+Inf value
    std::map<std::string, double> count_value;           // family -> _count value
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty()) << "blank line in exposition";
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream fields(line.substr(7));
            std::string family, type;
            fields >> family >> type;
            ASSERT_TRUE(valid_prom_name(family)) << family;
            ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
                << type;
            if (type == "counter") {
                EXPECT_TRUE(family.size() > 6 &&
                            family.compare(family.size() - 6, 6, "_total") == 0)
                    << "counter family must end in _total: " << family;
            }
            types[family] = type;
            continue;
        }
        ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string series = line.substr(0, space);
        const std::string value_text = line.substr(space + 1);
        double value = 0.0;
        ASSERT_NO_THROW(value = std::stod(value_text)) << line;
        std::string name = series;
        std::optional<std::string> le;
        if (const std::size_t brace = series.find('{'); brace != std::string::npos) {
            ASSERT_EQ(series.back(), '}') << line;
            name = series.substr(0, brace);
            const std::string labels = series.substr(brace + 1, series.size() - brace - 2);
            ASSERT_EQ(labels.rfind("le=\"", 0), 0u) << "only le labels expected: " << line;
            le = labels.substr(4, labels.size() - 5);
        }
        ASSERT_TRUE(valid_prom_name(name)) << name;
        // Find the declaring family: exact, or name minus a histogram suffix.
        std::string family = name;
        for (const char* suffix : {"_bucket", "_sum", "_count"}) {
            const std::string s(suffix);
            if (types.count(family) == 0 && name.size() > s.size() &&
                name.compare(name.size() - s.size(), s.size(), s) == 0) {
                family = name.substr(0, name.size() - s.size());
            }
        }
        ASSERT_EQ(types.count(family), 1u) << "sample before # TYPE: " << line;
        if (le.has_value()) {
            ASSERT_EQ(types[family], "histogram") << line;
            // Cumulative buckets never decrease; +Inf is the last and largest.
            const auto prev = last_bucket.find(family);
            if (prev != last_bucket.end()) {
                EXPECT_GE(value, prev->second) << line;
            }
            last_bucket[family] = value;
            if (*le == "+Inf") inf_bucket[family] = value;
        } else if (name == family + "_count") {
            count_value[family] = value;
        }
    }
    ASSERT_FALSE(types.empty());
    for (const auto& [family, type] : types) {
        if (type != "histogram") continue;
        ASSERT_EQ(inf_bucket.count(family), 1u) << family << " lacks le=\"+Inf\"";
        ASSERT_EQ(count_value.count(family), 1u) << family << " lacks _count";
        EXPECT_DOUBLE_EQ(inf_bucket[family], count_value[family]) << family;
    }
}

TEST_F(ExporterTest, PrometheusNameSanitizes) {
    EXPECT_EQ(prometheus_name("mc.trials_completed"), "mc_trials_completed");
    EXPECT_EQ(prometheus_name("checkpoint.flush_ns"), "checkpoint_flush_ns");
    EXPECT_EQ(prometheus_name("weird name!"), "weird_name_");
    EXPECT_EQ(prometheus_name("9lives"), "_lives");  // no leading digit
    EXPECT_EQ(prometheus_name(""), "_");
}

TEST_F(ExporterTest, ExpositionTextParses) {
    get_counter("mc.trials_completed").add(42);
    set_gauge("checkpoint.last_flush_seconds", 1.5);
    get_histogram("test.log2", {}).observe_u64(1000);
    const histogram_spec linear{histogram_spec::scale::linear, 0.0, 10.0, 5};
    get_histogram("test.linear", linear).observe(3.0);
    const std::string text = prometheus_text();
    parse_exposition(text);
    EXPECT_NE(text.find("levy_mc_trials_completed_total 42\n"), std::string::npos);
    EXPECT_NE(text.find("levy_checkpoint_last_flush_seconds 1.5\n"), std::string::npos);
    EXPECT_NE(text.find("levy_test_log2_bucket{le=\"1023\"} "), std::string::npos);
    EXPECT_NE(text.find("levy_run_trials_total "), std::string::npos);
}

#if LEVY_TEST_HAVE_SOCKETS

std::string http_get(unsigned short port, const std::string& path,
                     std::string* status_line = nullptr) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req = "GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    (void)!::send(fd, req.data(), req.size(), 0);
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t eol = response.find("\r\n");
    if (status_line != nullptr && eol != std::string::npos) {
        *status_line = response.substr(0, eol);
    }
    const std::size_t body = response.find("\r\n\r\n");
    return body == std::string::npos ? std::string{} : response.substr(body + 4);
}

TEST_F(ExporterTest, ServesHealthMetricsAndProgress) {
    get_counter("mc.trials_completed").add(7);
    const unsigned short port = start_metrics_exporter(0);
    ASSERT_GT(port, 0);
    EXPECT_TRUE(metrics_exporter_active());

    EXPECT_EQ(http_get(port, "/healthz"), "ok\n");
    const std::string metrics = http_get(port, "/metrics");
    parse_exposition(metrics);
    EXPECT_NE(metrics.find("levy_mc_trials_completed_total 7\n"), std::string::npos);

    const std::string progress = http_get(port, "/progress");
    const json doc = json::parse(progress);
    EXPECT_EQ(doc.at("completed").as_number(), 7.0);

    std::string status;
    (void)http_get(port, "/nope", &status);
    EXPECT_EQ(status, "HTTP/1.1 404 Not Found");

    EXPECT_THROW(start_metrics_exporter(0), std::logic_error);
    stop_metrics_exporter();
    EXPECT_FALSE(metrics_exporter_active());
}

TEST_F(ExporterTest, ConcurrentScrapesAllSucceed) {
    get_counter("mc.trials_completed").add(5);
    const unsigned short port = start_metrics_exporter(0);
    std::atomic<int> ok{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 8; ++t) {
        clients.emplace_back([&, t] {
            const std::string path = t % 2 == 0 ? "/metrics" : "/progress";
            for (int i = 0; i < 5; ++i) {
                if (!http_get(port, path).empty()) ok.fetch_add(1);
            }
        });
    }
    for (auto& c : clients) c.join();
    // The server answers serially, so every request eventually lands.
    EXPECT_EQ(ok.load(), 40);
    const std::string text = http_get(port, "/metrics");
    parse_exposition(text);
}

TEST_F(ExporterTest, RestartableAfterStop) {
    const unsigned short first = start_metrics_exporter(0);
    stop_metrics_exporter();
    const unsigned short second = start_metrics_exporter(0);
    EXPECT_GT(second, 0);
    EXPECT_FALSE(http_get(second, "/healthz").empty());
    (void)first;
}

int connect_raw(unsigned short port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

// Regression: a client that connects and never sends a byte must not wedge
// the (single-threaded) exporter — the head deadline cuts it off and the
// next scrape succeeds.
TEST_F(ExporterTest, SilentClientDoesNotWedgeTheExporter) {
    const unsigned short port = start_metrics_exporter(0);
    const int silent = connect_raw(port);
    ASSERT_GE(silent, 0);
    const auto start = std::chrono::steady_clock::now();
    // Served strictly after the stalled connection (one server thread), so
    // a reply at all proves the stall was bounded.
    EXPECT_EQ(http_get(port, "/healthz"), "ok\n");
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_LT(elapsed, 10.0);  // head deadline is 2 s; 10 s = something hung
    ::close(silent);
}

// Regression for the slow-loris hole the shared serve/http layer closes: a
// client dripping bytes faster than the per-recv timeout used to reset the
// only timer the exporter had, holding its serving thread forever. The
// *total* head deadline now evicts the dripper.
TEST_F(ExporterTest, DripFeedClientIsCutOffByTheTotalHeadDeadline) {
    const unsigned short port = start_metrics_exporter(0);
    const int drip = connect_raw(port);
    ASSERT_GE(drip, 0);
    std::atomic<bool> stop_drip{false};
    std::thread dripper([drip, &stop_drip] {
        // One byte every 250 ms: far inside the 1 s per-recv timeout, never
        // a complete head.
        // MSG_NOSIGNAL: the server hanging up on the dripper is the point.
        while (!stop_drip.load()) {
            if (::send(drip, "G", 1, MSG_NOSIGNAL) <= 0) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
        }
    });
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(http_get(port, "/healthz"), "ok\n");
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_LT(elapsed, 10.0) << "drip client outlived the total head deadline";
    stop_drip.store(true);
    dripper.join();
    ::close(drip);
}

#endif  // LEVY_TEST_HAVE_SOCKETS

}  // namespace
}  // namespace levy::obs
