#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/monte_carlo.h"

namespace levy::obs {
namespace {

class MetricsTest : public ::testing::Test {
protected:
    void SetUp() override { reset_metrics_registry(); }
};

TEST_F(MetricsTest, CounterAccumulates) {
    const counter c = get_counter("test.counter");
    c.add();
    c.add(41);
    const metrics_view v = snapshot_metrics();
    EXPECT_EQ(v.counters.at("test.counter"), 42u);
}

TEST_F(MetricsTest, ReRegisteringReturnsSameSlot) {
    get_counter("test.same").add(1);
    get_counter("test.same").add(2);
    EXPECT_EQ(snapshot_metrics().counters.at("test.same"), 3u);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
    set_gauge("test.gauge", 1.5);
    set_gauge("test.gauge", 2.5);
    EXPECT_DOUBLE_EQ(snapshot_metrics().gauges.at("test.gauge"), 2.5);
}

TEST_F(MetricsTest, LinearHistogramLayout) {
    const histogram_spec spec{histogram_spec::scale::linear, 0.0, 10.0, 5};
    const histogram_metric h = get_histogram("test.linear", spec);
    h.observe(-1.0);  // underflow
    h.observe(0.0);   // bin 0
    h.observe(9.99);  // bin 4
    h.observe(10.0);  // top edge: overflow (half-open bins)
    h.observe(25.0);  // overflow
    const histogram_snapshot s = snapshot_metrics().histograms.at("test.linear");
    ASSERT_EQ(s.buckets.size(), 7u);  // underflow + 5 + overflow
    EXPECT_EQ(s.buckets.front(), 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[5], 1u);
    EXPECT_EQ(s.buckets.back(), 2u);
    EXPECT_EQ(s.total(), 5u);
}

TEST_F(MetricsTest, Log2HistogramLayout) {
    const histogram_metric h = get_histogram("test.log2", {});
    h.observe_u64(0);     // zeros slot
    h.observe_u64(1);     // bit_width 1
    h.observe_u64(1024);  // bit_width 11
    h.observe_u64(std::uint64_t{1} << 63);  // bit_width 64: top slot
    const histogram_snapshot s = snapshot_metrics().histograms.at("test.log2");
    ASSERT_EQ(s.buckets.size(), 65u);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[11], 1u);
    EXPECT_EQ(s.buckets[64], 1u);
    EXPECT_EQ(s.total(), 4u);
}

TEST_F(MetricsTest, NameCollisionAcrossKindsThrows) {
    (void)get_counter("test.collision");
    EXPECT_THROW((void)get_histogram("test.collision", {}), std::exception);
    (void)get_histogram("test.hist_collision", {});
    EXPECT_THROW((void)get_counter("test.hist_collision"), std::exception);
}

TEST_F(MetricsTest, HistogramSpecMismatchThrows) {
    const histogram_spec a{histogram_spec::scale::linear, 0.0, 1.0, 4};
    const histogram_spec b{histogram_spec::scale::linear, 0.0, 1.0, 8};
    (void)get_histogram("test.spec", a);
    EXPECT_THROW((void)get_histogram("test.spec", b), std::exception);
    (void)get_histogram("test.spec", a);  // identical spec is fine
}

TEST_F(MetricsTest, ResetZeroesCountsButKeepsHandles) {
    const counter c = get_counter("test.reset");
    c.add(7);
    reset_metrics_registry();
    EXPECT_EQ(snapshot_metrics().counters.at("test.reset"), 0u);
    c.add(1);  // handle minted before the reset still works
    EXPECT_EQ(snapshot_metrics().counters.at("test.reset"), 1u);
}

// The determinism contract: concurrent relaxed increments on per-thread
// shards must merge to the exact total for any thread count / schedule.
// Run under TSan this also proves the hot path is race-free.
TEST_F(MetricsTest, ConcurrentIncrementsMergeExactly) {
    const counter c = get_counter("test.concurrent");
    const histogram_metric h =
        get_histogram("test.concurrent_hist", {histogram_spec::scale::linear, 0.0, 64.0, 8});
    constexpr std::size_t kItems = 19968;  // divisible by 64: i%64 fills bins evenly
    for (int round = 0; round < 2; ++round) {
        reset_metrics_registry();
        sim::parallel_for(kItems, /*threads=*/4, [&](std::size_t i) {
            c.add(2);
            h.observe(static_cast<double>(i % 64));
        });
        const metrics_view v = snapshot_metrics();
        EXPECT_EQ(v.counters.at("test.concurrent"), 2 * kItems);
        EXPECT_EQ(v.histograms.at("test.concurrent_hist").total(), kItems);
        // Bucketwise determinism, not just the total: i%64 spreads items
        // uniformly over the 8 in-range bins.
        for (std::size_t b = 1; b <= 8; ++b) {
            EXPECT_EQ(v.histograms.at("test.concurrent_hist").buckets[b], kItems / 8);
        }
    }
}

TEST_F(MetricsTest, EmptyNameThrows) {
    EXPECT_THROW((void)get_counter(""), std::exception);
    EXPECT_THROW((void)get_histogram("", {}), std::exception);
    EXPECT_THROW(set_gauge("", 0.0), std::exception);
}

}  // namespace
}  // namespace levy::obs
