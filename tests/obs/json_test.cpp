#include <gtest/gtest.h>

#include <stdexcept>

#include "src/obs/json.h"

namespace levy::obs {
namespace {

TEST(Json, ScalarsDump) {
    EXPECT_EQ(json(nullptr).dump(), "null");
    EXPECT_EQ(json(true).dump(), "true");
    EXPECT_EQ(json(false).dump(), "false");
    EXPECT_EQ(json("hi").dump(), "\"hi\"");
    EXPECT_EQ(json(3.5).dump(), "3.5");
}

TEST(Json, IntegersDumpWithoutFraction) {
    EXPECT_EQ(json(0).dump(), "0");
    EXPECT_EQ(json(-7).dump(), "-7");
    EXPECT_EQ(json(std::uint64_t{200000}).dump(), "200000");
    EXPECT_EQ(json(1.0).dump(), "1");  // numerically integral doubles too
}

TEST(Json, NonFiniteDumpsAsNull) {
    EXPECT_EQ(json(std::numeric_limits<double>::infinity()).dump(), "null");
    EXPECT_EQ(json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, ObjectPreservesInsertionOrder) {
    json obj = json::object();
    obj.set("zulu", 1);
    obj.set("alpha", 2);
    obj.set("mike", 3);
    EXPECT_EQ(obj.dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
    obj.set("zulu", 9);  // replace keeps the original position
    EXPECT_EQ(obj.dump(), "{\"zulu\":9,\"alpha\":2,\"mike\":3}");
}

TEST(Json, StringEscaping) {
    EXPECT_EQ(json("a\"b\\c\n\t").dump(), "\"a\\\"b\\\\c\\n\\t\"");
    EXPECT_EQ(json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ParseRoundTrip) {
    const std::string text =
        R"({"schema":"levy-bench","n":3,"neg":-2.5,"ok":true,"none":null,)"
        R"("arr":[1,2,3],"nested":{"k":"v"}})";
    const json doc = json::parse(text);
    EXPECT_EQ(doc.at("schema").as_string(), "levy-bench");
    EXPECT_DOUBLE_EQ(doc.at("n").as_number(), 3.0);
    EXPECT_DOUBLE_EQ(doc.at("neg").as_number(), -2.5);
    EXPECT_TRUE(doc.at("ok").as_bool());
    EXPECT_TRUE(doc.at("none").is_null());
    EXPECT_EQ(doc.at("arr").size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("arr").at(1).as_number(), 2.0);
    EXPECT_EQ(doc.at("nested").at("k").as_string(), "v");
    // Dump → parse → dump is a fixed point.
    EXPECT_EQ(json::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, ParseEscapes) {
    const json doc = json::parse(R"("tab\t quote\" u\u0041 \u00e9")");
    EXPECT_EQ(doc.as_string(), "tab\t quote\" u\x41 \xc3\xa9");
}

TEST(Json, ParseErrorsCarryOffset) {
    EXPECT_THROW((void)json::parse("{"), std::runtime_error);
    EXPECT_THROW((void)json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW((void)json::parse("tru"), std::runtime_error);
    EXPECT_THROW((void)json::parse("{} trailing"), std::runtime_error);
    try {
        (void)json::parse("[1, nope]");
        FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
    }
}

TEST(Json, KindMismatchThrows) {
    const json n(1.5);
    EXPECT_THROW((void)n.as_string(), std::runtime_error);
    EXPECT_THROW((void)n.at("key"), std::runtime_error);
    EXPECT_THROW((void)n.at(0), std::runtime_error);
    json obj = json::object();
    EXPECT_THROW((void)obj.at("missing"), std::runtime_error);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, PrettyPrint) {
    json doc = json::object();
    doc.set("a", 1);
    json arr = json::array();
    arr.push_back(2);
    doc.set("b", std::move(arr));
    EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

}  // namespace
}  // namespace levy::obs
