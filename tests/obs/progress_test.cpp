#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/sim/monte_carlo.h"

namespace levy::obs {
namespace {

class ProgressTest : public ::testing::Test {
protected:
    void SetUp() override {
        stop_progress();  // in case a prior test leaked a sampler
        reset_metrics_registry();
        sim::reset_metrics();
    }
    void TearDown() override { stop_progress(); }
};

TEST_F(ProgressTest, SnapshotReadsDriverCounters) {
    get_counter(kTrialsPlannedCounter).add(100);
    get_counter(kTrialsCompletedCounter).add(40);
    const progress_snapshot s = snapshot_progress();
    EXPECT_EQ(s.planned, 100u);
    EXPECT_EQ(s.completed, 40u);
    EXPECT_EQ(s.censored, 0u);
    EXPECT_LT(s.checkpoint_age_seconds, 0.0);  // no flush yet
}

TEST_F(ProgressTest, CheckpointGaugeBecomesAge) {
    set_gauge(kCheckpointFlushGauge, monotonic_seconds());
    const progress_snapshot s = snapshot_progress();
    EXPECT_GE(s.checkpoint_age_seconds, 0.0);
    EXPECT_LT(s.checkpoint_age_seconds, 5.0);
}

TEST_F(ProgressTest, StartStopLifecycle) {
    EXPECT_FALSE(progress_active());
    start_progress({.interval_seconds = 0.05, .label = "T"});
    EXPECT_TRUE(progress_active());
    EXPECT_THROW(start_progress({.interval_seconds = 0.05, .label = "T"}),
                 std::logic_error);
    get_counter(kTrialsPlannedCounter).add(10);
    get_counter(kTrialsCompletedCounter).add(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    stop_progress();
    EXPECT_FALSE(progress_active());
    stop_progress();  // idempotent
    // Restartable after stop.
    start_progress({.interval_seconds = 0.05, .label = "T2"});
    EXPECT_TRUE(progress_active());
    stop_progress();
}

TEST_F(ProgressTest, StartRejectsNonPositiveInterval) {
    EXPECT_THROW(start_progress({.interval_seconds = 0.0, .label = ""}),
                 std::invalid_argument);
}

TEST_F(ProgressTest, FormatLineCarriesEveryField) {
    progress_snapshot s;
    s.label = "E6";
    s.phase = "sweep";
    s.planned = 5760;
    s.completed = 1120;
    s.censored = 3;
    s.elapsed_seconds = 35.0;
    s.trials_per_sec = 3210.0;
    s.eta_seconds = 87.0;
    s.checkpoint_age_seconds = 1.2;
    const std::string line = format_progress_line(s);
    EXPECT_EQ(line,
              "progress [E6]: 1120/5760 trials (19.4%) | 3210 trials/s | phase sweep | "
              "3 censored | ckpt 1.2s ago | ETA 1m27s | elapsed 35s");
}

TEST_F(ProgressTest, FormatLineOmitsUnknowns) {
    progress_snapshot s;
    s.completed = 7;
    const std::string line = format_progress_line(s);
    EXPECT_EQ(line, "progress: 7 trials | 0 trials/s | ETA ? | elapsed 0s");
}

TEST_F(ProgressTest, JsonUsesNullForUnknowns) {
    progress_snapshot s;
    s.label = "E1";
    s.planned = 10;
    s.completed = 5;
    const json doc = progress_to_json(s);
    EXPECT_TRUE(doc.at("eta_seconds").is_null());
    EXPECT_TRUE(doc.at("checkpoint_age_seconds").is_null());
    EXPECT_EQ(doc.at("label").as_string(), "E1");
    EXPECT_EQ(doc.at("planned").as_number(), 10.0);
    s.eta_seconds = 2.5;
    s.checkpoint_age_seconds = 0.5;
    const json doc2 = progress_to_json(s);
    EXPECT_DOUBLE_EQ(doc2.at("eta_seconds").as_number(), 2.5);
    EXPECT_DOUBLE_EQ(doc2.at("checkpoint_age_seconds").as_number(), 0.5);
}

TEST_F(ProgressTest, MonteCarloRunFeedsPlannedAndCompleted) {
    sim::mc_options opts;
    opts.trials = 25;
    opts.threads = 1;
    (void)sim::monte_carlo_collect(opts, [](std::size_t i, rng&) { return static_cast<int>(i); });
    const progress_snapshot s = snapshot_progress();
    EXPECT_EQ(s.planned, 25u);
    EXPECT_EQ(s.completed, 25u);
}

TEST_F(ProgressTest, MonotonicSecondsAdvances) {
    const double a = monotonic_seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double b = monotonic_seconds();
    EXPECT_GT(b, a);
}

}  // namespace
}  // namespace levy::obs
