#include <gtest/gtest.h>

#include <set>

#include "src/baselines/spiral_search.h"
#include "src/grid/ball.h"

namespace levy::baselines {
namespace {

TEST(SpiralSearch, FirstFewSteps) {
    spiral_search s;
    EXPECT_EQ(s.step(), (point{1, 0}));   // E
    EXPECT_EQ(s.step(), (point{1, 1}));   // N
    EXPECT_EQ(s.step(), (point{0, 1}));   // W
    EXPECT_EQ(s.step(), (point{-1, 1}));  // W
    EXPECT_EQ(s.step(), (point{-1, 0}));  // S
    EXPECT_EQ(s.step(), (point{-1, -1})); // S
}

TEST(SpiralSearch, NeverRevisitsANode) {
    spiral_search s;
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    seen.insert({0, 0});
    for (int i = 0; i < 20000; ++i) {
        const point p = s.step();
        ASSERT_TRUE(seen.insert({p.x, p.y}).second) << "revisited " << p.x << "," << p.y;
    }
}

TEST(SpiralSearch, EveryStepIsUnit) {
    spiral_search s({4, 4});
    point prev = s.position();
    for (int i = 0; i < 5000; ++i) {
        const point next = s.step();
        ASSERT_EQ(l1_distance(prev, next), 1);
        prev = next;
    }
}

class SpiralCoverage : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SpiralCoverage, CoversBoxWithinItsArea) {
    // Q_r has (2r+1)² nodes; the spiral visits all of them within
    // (2r+1)² − 1 steps of leaving the center.
    const std::int64_t r = GetParam();
    spiral_search s;
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    seen.insert({0, 0});
    const std::uint64_t steps = box_size(r) - 1;
    for (std::uint64_t i = 0; i < steps; ++i) {
        const point p = s.step();
        ASSERT_TRUE(in_box(origin, r, p)) << "left Q_" << r << " early";
        seen.insert({p.x, p.y});
    }
    EXPECT_EQ(seen.size(), box_size(r));
}

INSTANTIATE_TEST_SUITE_P(Radii, SpiralCoverage, ::testing::Values<std::int64_t>(1, 2, 3, 7, 15));

TEST(SpiralSearch, CenteredSpiralsAreTranslates) {
    spiral_search a, b({10, -3});
    for (int i = 0; i < 1000; ++i) {
        const point pa = a.step();
        const point pb = b.step();
        EXPECT_EQ(pa + (point{10, -3}), pb);
    }
}

}  // namespace
}  // namespace levy::baselines
