#include <gtest/gtest.h>

#include "src/baselines/fk_ants.h"
#include "src/core/hitting.h"

namespace levy::baselines {
namespace {

TEST(FkAnts, EveryStepIsAtMostUnit) {
    fk_ants_searcher a(4, rng::seeded(1));
    point prev = a.position();
    for (int i = 0; i < 50000; ++i) {
        const point next = a.step();
        ASSERT_LE(l1_distance(prev, next), 1);
        prev = next;
    }
    EXPECT_EQ(a.steps(), 50000u);
}

TEST(FkAnts, RadiusDoubles) {
    fk_ants_searcher a(1, rng::seeded(2));
    std::int64_t prev_radius = a.radius();
    EXPECT_EQ(prev_radius, 2);  // first epoch: 1 → 2
    // Run long enough for several epochs.
    for (int i = 0; i < 300000 && a.radius() < 32; ++i) a.step();
    EXPECT_GE(a.radius(), 32);
}

TEST(FkAnts, FindsCloseTargetQuickly) {
    // A target at distance 3 lies inside the first epochs' spirals; with the
    // searcher tuned for k=1 it must be found within a few epoch lengths.
    int hits = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        fk_ants_searcher a(1, rng::seeded(seed));
        hits += hit_within(a, point{3, 0}, 5000).hit;
    }
    EXPECT_GE(hits, 15);
}

TEST(FkAnts, DeterministicGivenSeed) {
    fk_ants_searcher a(3, rng::seeded(4)), b(3, rng::seeded(4));
    for (int i = 0; i < 10000; ++i) ASSERT_EQ(a.step(), b.step());
}

TEST(FkAnts, LargerFleetsSpiralLessPerEpoch) {
    // A k=64 searcher owes the fleet a 64× smaller spiral share per epoch,
    // so it burns through epochs (radius doublings) in far fewer steps than
    // a lone searcher once the quadratic share dominates the 4r floor.
    const auto steps_to_radius = [](std::size_t k, std::int64_t target_radius) {
        fk_ants_searcher a(k, rng::seeded(5));
        int i = 0;
        while (a.radius() < target_radius && i < 5000000) {
            a.step();
            ++i;
        }
        return i;
    };
    const int big_fleet = steps_to_radius(64, 64);
    const int small_fleet = steps_to_radius(1, 64);
    ASSERT_LT(big_fleet, 5000000);
    ASSERT_LT(small_fleet, 5000000);
    EXPECT_LT(big_fleet, small_fleet / 2);
}

TEST(FkAnts, RejectsBadArguments) {
    EXPECT_THROW(fk_ants_searcher(0, rng::seeded(6)), std::invalid_argument);
    EXPECT_THROW(fk_ants_searcher(1, rng::seeded(7), origin, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace levy::baselines
