#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/baselines/simple_random_walk.h"
#include "src/grid/ring.h"

namespace levy::baselines {
namespace {

TEST(SimpleRandomWalk, EveryStepIsUnit) {
    simple_random_walk w(rng::seeded(1));
    point prev = w.position();
    for (int i = 0; i < 10000; ++i) {
        const point next = w.step();
        ASSERT_EQ(l1_distance(prev, next), 1);
        prev = next;
    }
    EXPECT_EQ(w.steps(), 10000u);
}

TEST(SimpleRandomWalk, DirectionsAreUniform) {
    simple_random_walk w(rng::seeded(2));
    std::map<std::uint64_t, int> counts;
    point prev = w.position();
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const point next = w.step();
        ++counts[ring_index(prev, next)];
        prev = next;
    }
    for (std::uint64_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(static_cast<double>(counts[j]) / n, 0.25, 0.01) << "dir " << j;
    }
}

TEST(SimpleRandomWalk, MeanSquaredDisplacementIsLinear) {
    // E‖X_t‖₂² = t exactly for the SRW on Z².
    const std::uint64_t t = 2000;
    const int trials = 300;
    double msd = 0.0;
    for (int i = 0; i < trials; ++i) {
        simple_random_walk w(rng::seeded(100 + static_cast<std::uint64_t>(i)));
        for (std::uint64_t s = 0; s < t; ++s) w.step();
        msd += static_cast<double>(l2_norm_sq(w.position()));
    }
    msd /= trials;
    EXPECT_NEAR(msd / static_cast<double>(t), 1.0, 0.15);
}

TEST(SimpleRandomWalk, DeterministicGivenSeed) {
    simple_random_walk a(rng::seeded(3)), b(rng::seeded(3));
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.step(), b.step());
}

TEST(SimpleRandomWalk, StartsWhereTold) {
    simple_random_walk w(rng::seeded(4), {7, -7});
    EXPECT_EQ(w.position(), (point{7, -7}));
}

}  // namespace
}  // namespace levy::baselines
