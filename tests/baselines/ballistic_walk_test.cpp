#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/baselines/ballistic_walk.h"

namespace levy::baselines {
namespace {

TEST(BallisticWalk, EveryStepIsUnit) {
    ballistic_walk w(rng::seeded(1));
    point prev = w.position();
    for (int i = 0; i < 5000; ++i) {
        const point next = w.step();
        ASSERT_EQ(l1_distance(prev, next), 1);
        prev = next;
    }
}

TEST(BallisticWalk, DisplacementIsExactlyLinear) {
    // While on its first (astronomically long) segment, the walk's L1
    // displacement equals its step count: every step makes progress.
    ballistic_walk w(rng::seeded(2));
    for (int t = 1; t <= 3000; ++t) {
        w.step();
        ASSERT_EQ(l1_norm(w.position()), t);
    }
}

TEST(BallisticWalk, FollowsItsAngle) {
    ballistic_walk w(rng::seeded(3));
    const double theta = w.direction();
    for (int i = 0; i < 10000; ++i) w.step();
    const double gx = std::cos(theta), gy = std::sin(theta);
    const double expected_l1 = 10000.0 / (std::abs(gx) + std::abs(gy));
    EXPECT_NEAR(static_cast<double>(w.position().x), expected_l1 * gx, 5.0);
    EXPECT_NEAR(static_cast<double>(w.position().y), expected_l1 * gy, 5.0);
}

TEST(BallisticWalk, AnglesVaryAcrossSeeds) {
    const double a = ballistic_walk(rng::seeded(4)).direction();
    const double b = ballistic_walk(rng::seeded(5)).direction();
    EXPECT_NE(a, b);
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 2.0 * std::numbers::pi);
}

TEST(BallisticWalk, DeterministicGivenSeed) {
    ballistic_walk a(rng::seeded(6)), b(rng::seeded(6));
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.step(), b.step());
}

TEST(BallisticWalk, StepCounterAdvances) {
    ballistic_walk w(rng::seeded(7));
    for (int i = 0; i < 100; ++i) w.step();
    EXPECT_EQ(w.steps(), 100u);
}

}  // namespace
}  // namespace levy::baselines
