#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(RngStream, SeededIsDeterministic) {
    rng a = rng::seeded(5), b = rng::seeded(5);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(RngStream, SubstreamIndependentOfDrawPosition) {
    rng a = rng::seeded(5);
    rng b = rng::seeded(5);
    for (int i = 0; i < 57; ++i) b();  // advance b only
    rng sub_a = a.substream(3);
    rng sub_b = b.substream(3);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(sub_a(), sub_b());
}

TEST(RngStream, SubstreamsDiverge) {
    rng master = rng::seeded(7);
    rng s0 = master.substream(0);
    rng s1 = master.substream(1);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += (s0() == s1());
    EXPECT_EQ(equal, 0);
}

TEST(RngStream, UniformInUnitInterval) {
    rng g = rng::seeded(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = g.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, UniformPositiveNeverZero) {
    rng g = rng::seeded(12);
    for (int i = 0; i < 100000; ++i) {
        const double u = g.uniform_positive();
        ASSERT_GT(u, 0.0);
        ASSERT_LE(u, 1.0);
    }
}

TEST(RngStream, UniformRangeRespectsBounds) {
    rng g = rng::seeded(13);
    for (int i = 0; i < 10000; ++i) {
        const double u = g.uniform(2.0, 3.0);
        ASSERT_GE(u, 2.0);
        ASSERT_LT(u, 3.0);
    }
}

TEST(RngStream, BelowStaysBelowAndCoversRange) {
    rng g = rng::seeded(14);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t v = g.below(10);
        ASSERT_LT(v, 10u);
        ++counts[v];
    }
    // Each bucket expected 10%; 4 sigma ≈ 0.4%.
    for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.005);
}

TEST(RngStream, BelowOneAlwaysZero) {
    rng g = rng::seeded(15);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(g.below(1), 0u);
}

TEST(RngStream, UniformIntInclusiveBounds) {
    rng g = rng::seeded(16);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::int64_t v = g.uniform_int(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngStream, CoinIsRoughlyFair) {
    rng g = rng::seeded(17);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) heads += g.coin();
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.01);
}

TEST(RngStream, BernoulliMatchesProbability) {
    rng g = rng::seeded(18);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += g.bernoulli(0.2);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(RngStream, SeedAccessorReflectsConstruction) {
    EXPECT_EQ(rng::seeded(99).seed(), 99u);
}

}  // namespace
}  // namespace levy
