#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/rng/jump_distribution.h"
#include "src/rng/rng_stream.h"
#include "src/rng/zeta.h"

namespace levy {
namespace {

TEST(JumpDistribution, RejectsAlphaAtOrBelowOne) {
    EXPECT_THROW(jump_distribution(1.0), std::invalid_argument);
}

TEST(JumpDistribution, AtomAtZeroIsHalf) {
    const jump_distribution d(2.5);
    EXPECT_DOUBLE_EQ(d.pmf(0), 0.5);
}

TEST(JumpDistribution, PmfMatchesEquationThree) {
    // P(d = i) = c_α / i^α with c_α = 1/(2ζ(α)).
    const double alpha = 2.2;
    const jump_distribution d(alpha);
    const double c = 1.0 / (2.0 * riemann_zeta(alpha));
    EXPECT_NEAR(d.normalizer(), c, 1e-12);
    for (std::uint64_t i = 1; i <= 10; ++i) {
        EXPECT_NEAR(d.pmf(i), c * std::pow(static_cast<double>(i), -alpha), 1e-12);
    }
}

TEST(JumpDistribution, PmfSumsToOne) {
    const jump_distribution d(2.5);
    double sum = d.pmf(0);
    for (std::uint64_t i = 1; i < 2000; ++i) sum += d.pmf(i);
    sum += d.tail(2000);
    EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(JumpDistribution, TailIdentities) {
    const jump_distribution d(2.5);
    EXPECT_DOUBLE_EQ(d.tail(0), 1.0);
    EXPECT_NEAR(d.tail(1), 0.5, 1e-12);  // all the non-atom mass
    // tail(i) - tail(i+1) = pmf(i).
    for (std::uint64_t i = 1; i <= 20; ++i) {
        EXPECT_NEAR(d.tail(i) - d.tail(i + 1), d.pmf(i), 1e-12) << "i=" << i;
    }
}

TEST(JumpDistribution, TailHasEquationFourShape) {
    // Eq. 4: P(d ≥ i) = Θ(1/i^{α-1}); the ratio tail(i)·i^{α-1} stabilizes.
    const double alpha = 2.5;
    const jump_distribution d(alpha);
    const double r1 = d.tail(100) * std::pow(100.0, alpha - 1.0);
    const double r2 = d.tail(10000) * std::pow(10000.0, alpha - 1.0);
    EXPECT_NEAR(r1 / r2, 1.0, 0.05);
}

class JumpSampling : public ::testing::TestWithParam<double> {};

TEST_P(JumpSampling, EmpiricalLawMatchesPmf) {
    const double alpha = GetParam();
    const jump_distribution d(alpha);
    rng g = rng::seeded(0x1234);
    const int n = 300000;
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < n; ++i) ++counts[d.sample(g)];
    for (const std::uint64_t k : {0ULL, 1ULL, 2ULL, 3ULL}) {
        const double expected = d.pmf(k);
        const double observed = static_cast<double>(counts[k]) / n;
        const double sigma = std::sqrt(expected * (1.0 - expected) / n);
        EXPECT_NEAR(observed, expected, 5.0 * sigma + 1e-9) << "alpha=" << alpha << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, JumpSampling, ::testing::Values(1.5, 2.0, 2.5, 3.0, 4.0));

TEST(JumpDistribution, CappedSamplingRespectsCap) {
    const jump_distribution d(1.6);
    rng g = rng::seeded(9);
    for (int i = 0; i < 20000; ++i) ASSERT_LE(d.sample_capped(g, 30), 30u);
}

TEST(JumpDistribution, NoCapSentinelSamplesFreely) {
    const jump_distribution d(2.5);
    rng g = rng::seeded(10);
    bool saw_large = false;
    for (int i = 0; i < 200000 && !saw_large; ++i) saw_large = d.sample_capped(g, kNoCap) > 100;
    EXPECT_TRUE(saw_large);  // uncapped α=2.5 exceeds 100 with prob ~1e-3/draw
}

TEST(JumpDistribution, MeanFiniteExactlyAboveTwo) {
    EXPECT_TRUE(std::isinf(jump_distribution(1.5).mean()));
    EXPECT_TRUE(std::isinf(jump_distribution(2.0).mean()));
    const double alpha = 3.0;
    const jump_distribution d(alpha);
    EXPECT_NEAR(d.mean(), riemann_zeta(2.0) / (2.0 * riemann_zeta(3.0)), 1e-10);
}

TEST(JumpDistribution, EmpiricalMeanMatchesForFiniteMean) {
    const jump_distribution d(3.5);
    rng g = rng::seeded(11);
    const int n = 400000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(g));
    EXPECT_NEAR(sum / n, d.mean(), 0.01);
}

TEST(JumpDistribution, VarianceFiniteExactlyAboveThree) {
    EXPECT_TRUE(std::isinf(jump_distribution(2.5).variance()));
    EXPECT_TRUE(std::isinf(jump_distribution(3.0).variance()));
    EXPECT_GT(jump_distribution(4.0).variance(), 0.0);
    EXPECT_FALSE(std::isinf(jump_distribution(4.0).variance()));
}

TEST(JumpDistribution, CappedMeanBelowUncappedMean) {
    const jump_distribution d(2.5);
    // Capping removes the heavy tail, so the conditional mean is smaller.
    EXPECT_LT(d.mean_capped(100), d.mean());
    EXPECT_GT(d.mean_capped(100), 0.0);
    // And grows with the cap.
    EXPECT_LT(d.mean_capped(10), d.mean_capped(1000));
}

TEST(JumpDistribution, CappedMeanMatchesEmpirical) {
    const double alpha = 1.8;  // unbounded mean; capped mean is finite
    const jump_distribution d(alpha);
    rng g = rng::seeded(12);
    const std::uint64_t cap = 200;
    const int n = 400000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample_capped(g, cap));
    EXPECT_NEAR(sum / n, d.mean_capped(cap), d.mean_capped(cap) * 0.03);
}

}  // namespace
}  // namespace levy
