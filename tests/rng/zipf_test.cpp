#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/rng/rng_stream.h"
#include "src/rng/zeta.h"
#include "src/rng/zipf.h"

namespace levy {
namespace {

TEST(ZipfSampler, RejectsAlphaAtOrBelowOne) {
    EXPECT_THROW(zipf_sampler(1.0), std::invalid_argument);
    EXPECT_THROW(zipf_sampler(0.5), std::invalid_argument);
}

TEST(ZipfSampler, ProducesPositiveValues) {
    zipf_sampler z(2.0);
    rng g = rng::seeded(1);
    for (int i = 0; i < 10000; ++i) ASSERT_GE(z(g), 1u);
}

/// Devroye sampler vs the exact pmf, for small values where the pmf mass is
/// large enough to estimate tightly.
class ZipfPmf : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPmf, EmpiricalPmfMatchesExactLaw) {
    const double alpha = GetParam();
    zipf_sampler z(alpha);
    rng g = rng::seeded(0xabcd);
    const int n = 400000;
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < n; ++i) ++counts[z(g)];
    const double inv_zeta = 1.0 / riemann_zeta(alpha);
    for (std::uint64_t k = 1; k <= 5; ++k) {
        const double expected = std::pow(static_cast<double>(k), -alpha) * inv_zeta;
        const double observed = static_cast<double>(counts[k]) / n;
        // 5-sigma binomial band.
        const double sigma = std::sqrt(expected * (1.0 - expected) / n);
        EXPECT_NEAR(observed, expected, 5.0 * sigma + 1e-9)
            << "alpha=" << alpha << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfPmf, ::testing::Values(1.5, 2.0, 2.5, 3.0, 3.5));

TEST(ZipfSampler, TailExponentMatchesAlpha) {
    // P(X >= i) ≈ i^{1-α}/( (α-1) ζ(α) ): check the ratio at two decades.
    const double alpha = 2.5;
    zipf_sampler z(alpha);
    rng g = rng::seeded(0xbeef);
    const int n = 1000000;
    int ge10 = 0, ge100 = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = z(g);
        ge10 += (x >= 10);
        ge100 += (x >= 100);
    }
    const double ratio = static_cast<double>(ge10) / static_cast<double>(ge100);
    // Exact ratio ζtail(10)/ζtail(100) ≈ 10^{α-1} = 31.6; allow sampling noise.
    const double exact = zeta_tail(10, alpha) / zeta_tail(100, alpha);
    EXPECT_NEAR(ratio / exact, 1.0, 0.15);
}

TEST(ZipfSampler, CappedNeverExceedsCap) {
    zipf_sampler z(1.5);
    rng g = rng::seeded(3);
    for (int i = 0; i < 20000; ++i) ASSERT_LE(z.sample_capped(g, 50), 50u);
}

TEST(ZipfSampler, CapOneIsDegenerate) {
    zipf_sampler z(2.5);
    rng g = rng::seeded(4);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(z.sample_capped(g, 1), 1u);
}

TEST(ZipfSampler, CappedSmallCapNearOneTerminates) {
    // The pathological corner for pure rejection: P(X <= cap) is tiny when
    // α is near 1 and the cap small, so the unbounded loop used to spin for
    // thousands of draws per sample. The bounded-rejection + inverse-CDF
    // fallback must return promptly and still follow the truncated law.
    const double alpha = 1.05;
    const std::uint64_t cap = 3;
    zipf_sampler rejection(alpha);
    zipf_table_sampler table(alpha, cap);
    rng g = rng::seeded(8);
    const int n = 20000;
    std::vector<int> counts(cap + 1, 0);
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = rejection.sample_capped(g, cap);
        ASSERT_GE(x, 1u);
        ASSERT_LE(x, cap);
        ++counts[x];
    }
    for (std::uint64_t k = 1; k <= cap; ++k) {
        const double expected = table.pmf(k);
        const double observed = static_cast<double>(counts[k]) / n;
        const double sigma = std::sqrt(expected * (1.0 - expected) / n);
        EXPECT_NEAR(observed, expected, 6.0 * sigma + 1e-3) << "k=" << k;
    }
}

TEST(ZipfSampler, CappedMatchesTableSampler) {
    // The rejection-capped law must coincide with the exact truncated law.
    const double alpha = 2.0;
    const std::uint64_t cap = 20;
    zipf_sampler rejection(alpha);
    zipf_table_sampler table(alpha, cap);
    rng g1 = rng::seeded(5), g2 = rng::seeded(6);
    const int n = 300000;
    std::vector<int> c1(cap + 1, 0), c2(cap + 1, 0);
    for (int i = 0; i < n; ++i) {
        ++c1[rejection.sample_capped(g1, cap)];
        ++c2[table(g2)];
    }
    for (std::uint64_t k = 1; k <= cap; ++k) {
        const double p1 = static_cast<double>(c1[k]) / n;
        const double p2 = static_cast<double>(c2[k]) / n;
        const double sigma = std::sqrt(table.pmf(k) / n);
        EXPECT_NEAR(p1, p2, 6.0 * sigma + 1e-4) << "k=" << k;
    }
}

TEST(ZipfTableSampler, PmfSumsToOne) {
    zipf_table_sampler t(2.5, 100);
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= 100; ++k) sum += t.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTableSampler, PmfZeroOutsideSupport) {
    zipf_table_sampler t(2.5, 10);
    EXPECT_DOUBLE_EQ(t.pmf(0), 0.0);
    EXPECT_DOUBLE_EQ(t.pmf(11), 0.0);
}

TEST(ZipfTableSampler, RejectsBadArguments) {
    EXPECT_THROW(zipf_table_sampler(2.0, 0), std::invalid_argument);
    EXPECT_THROW(zipf_table_sampler(0.0, 10), std::invalid_argument);
}

TEST(ZipfSampler, MeanMatchesZetaRatio) {
    // E[X] = ζ(α-1)/ζ(α) for α > 2.
    const double alpha = 3.5;
    zipf_sampler z(alpha);
    rng g = rng::seeded(7);
    const int n = 500000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(z(g));
    const double expected = riemann_zeta(alpha - 1.0) / riemann_zeta(alpha);
    EXPECT_NEAR(sum / n, expected, 0.02);
}

}  // namespace
}  // namespace levy
