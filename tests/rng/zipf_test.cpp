#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/rng/rng_stream.h"
#include "src/rng/zeta.h"
#include "src/rng/zipf.h"

namespace levy {
namespace {

TEST(ZipfSampler, RejectsAlphaAtOrBelowOne) {
    EXPECT_THROW(zipf_sampler(1.0), std::invalid_argument);
    EXPECT_THROW(zipf_sampler(0.5), std::invalid_argument);
}

TEST(ZipfSampler, ProducesPositiveValues) {
    zipf_sampler z(2.0);
    rng g = rng::seeded(1);
    for (int i = 0; i < 10000; ++i) ASSERT_GE(z(g), 1u);
}

/// Devroye sampler vs the exact pmf, for small values where the pmf mass is
/// large enough to estimate tightly.
class ZipfPmf : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPmf, EmpiricalPmfMatchesExactLaw) {
    const double alpha = GetParam();
    zipf_sampler z(alpha);
    rng g = rng::seeded(0xabcd);
    const int n = 400000;
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < n; ++i) ++counts[z(g)];
    const double inv_zeta = 1.0 / riemann_zeta(alpha);
    for (std::uint64_t k = 1; k <= 5; ++k) {
        const double expected = std::pow(static_cast<double>(k), -alpha) * inv_zeta;
        const double observed = static_cast<double>(counts[k]) / n;
        // 5-sigma binomial band.
        const double sigma = std::sqrt(expected * (1.0 - expected) / n);
        EXPECT_NEAR(observed, expected, 5.0 * sigma + 1e-9)
            << "alpha=" << alpha << " k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfPmf, ::testing::Values(1.5, 2.0, 2.5, 3.0, 3.5));

TEST(ZipfSampler, TailExponentMatchesAlpha) {
    // P(X >= i) ≈ i^{1-α}/( (α-1) ζ(α) ): check the ratio at two decades.
    const double alpha = 2.5;
    zipf_sampler z(alpha);
    rng g = rng::seeded(0xbeef);
    const int n = 1000000;
    int ge10 = 0, ge100 = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = z(g);
        ge10 += (x >= 10);
        ge100 += (x >= 100);
    }
    const double ratio = static_cast<double>(ge10) / static_cast<double>(ge100);
    // Exact ratio ζtail(10)/ζtail(100) ≈ 10^{α-1} = 31.6; allow sampling noise.
    const double exact = zeta_tail(10, alpha) / zeta_tail(100, alpha);
    EXPECT_NEAR(ratio / exact, 1.0, 0.15);
}

TEST(ZipfSampler, CappedNeverExceedsCap) {
    zipf_sampler z(1.5);
    rng g = rng::seeded(3);
    for (int i = 0; i < 20000; ++i) ASSERT_LE(z.sample_capped(g, 50), 50u);
}

TEST(ZipfSampler, CapOneIsDegenerate) {
    zipf_sampler z(2.5);
    rng g = rng::seeded(4);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(z.sample_capped(g, 1), 1u);
}

TEST(ZipfSampler, CappedSmallCapNearOneTerminates) {
    // The pathological corner for pure rejection: P(X <= cap) is tiny when
    // α is near 1 and the cap small, so the unbounded loop used to spin for
    // thousands of draws per sample. The bounded-rejection + inverse-CDF
    // fallback must return promptly and still follow the truncated law.
    const double alpha = 1.05;
    const std::uint64_t cap = 3;
    zipf_sampler rejection(alpha);
    zipf_table_sampler table(alpha, cap);
    rng g = rng::seeded(8);
    const int n = 20000;
    std::vector<int> counts(cap + 1, 0);
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = rejection.sample_capped(g, cap);
        ASSERT_GE(x, 1u);
        ASSERT_LE(x, cap);
        ++counts[x];
    }
    for (std::uint64_t k = 1; k <= cap; ++k) {
        const double expected = table.pmf(k);
        const double observed = static_cast<double>(counts[k]) / n;
        const double sigma = std::sqrt(expected * (1.0 - expected) / n);
        EXPECT_NEAR(observed, expected, 6.0 * sigma + 1e-3) << "k=" << k;
    }
}

TEST(ZipfSampler, CappedMatchesTableSampler) {
    // The rejection-capped law must coincide with the exact truncated law.
    const double alpha = 2.0;
    const std::uint64_t cap = 20;
    zipf_sampler rejection(alpha);
    zipf_table_sampler table(alpha, cap);
    rng g1 = rng::seeded(5), g2 = rng::seeded(6);
    const int n = 300000;
    std::vector<int> c1(cap + 1, 0), c2(cap + 1, 0);
    for (int i = 0; i < n; ++i) {
        ++c1[rejection.sample_capped(g1, cap)];
        ++c2[table(g2)];
    }
    for (std::uint64_t k = 1; k <= cap; ++k) {
        const double p1 = static_cast<double>(c1[k]) / n;
        const double p2 = static_cast<double>(c2[k]) / n;
        const double sigma = std::sqrt(table.pmf(k) / n);
        EXPECT_NEAR(p1, p2, 6.0 * sigma + 1e-4) << "k=" << k;
    }
}

TEST(ZipfTableSampler, QuantileClampsToSupport) {
    // The inverse CDF must clamp to [1, cap] for every finite u. u >= 1 (or
    // any u at or above cdf.back()) lands upper_bound at end(); the old code
    // dereferenced it into an index one past the table.
    zipf_table_sampler t(2.0, 7);
    EXPECT_EQ(t.quantile(0.0), 1u);
    EXPECT_EQ(t.quantile(1.0), 7u);
    EXPECT_EQ(t.quantile(std::nextafter(1.0, 2.0)), 7u);
    EXPECT_EQ(t.quantile(2.0), 7u);
    rng g = rng::seeded(11);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t x = t(g);
        ASSERT_GE(x, 1u);
        ASSERT_LE(x, 7u);
    }
}

TEST(ZipfTableSampler, TailPmfKeepsRelativePrecision) {
    // pmf() must be the direct formula k^{-α}/H(cap, α). The old differencing
    // of adjacent normalized-CDF entries had absolute error ~ulp(1), which at
    // a 2^20 tail (true mass ~1e-8) is ~1e-8 *relative* error; the direct
    // form stays within a couple of ulps. Note Σ pmf telescopes to exactly 1
    // for the differencing code, so a sum test alone cannot catch this.
    const double alpha = 1.2;
    const std::uint64_t cap = 1u << 20;
    zipf_table_sampler t(alpha, cap);
    for (const std::uint64_t k :
         {cap, cap - 1, cap / 2, std::uint64_t{100000}, std::uint64_t{4096}}) {
        const double expected = std::pow(static_cast<double>(k), -alpha) / t.partition();
        EXPECT_NEAR(t.pmf(k) / expected, 1.0, 1e-12) << "k=" << k;
    }
}

TEST(ZipfTableSampler, PmfSumsToOne) {
    zipf_table_sampler t(2.5, 100);
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= 100; ++k) sum += t.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTableSampler, PmfZeroOutsideSupport) {
    zipf_table_sampler t(2.5, 10);
    EXPECT_DOUBLE_EQ(t.pmf(0), 0.0);
    EXPECT_DOUBLE_EQ(t.pmf(11), 0.0);
}

TEST(ZipfTableSampler, RejectsBadArguments) {
    EXPECT_THROW(zipf_table_sampler(2.0, 0), std::invalid_argument);
    EXPECT_THROW(zipf_table_sampler(0.0, 10), std::invalid_argument);
}

TEST(ZipfSampler, CappedDrawCountContractIsPinned) {
    // The batched walk engine replays walker streams, so sample_capped's
    // draw count is a frozen contract: up to kMaxRejections full rejection
    // draws, then exactly one uniform for the inverse-CDF fallback (the
    // harmonic bisection consumes no randomness). α near 1 with a tiny cap
    // exercises both branches across seeds.
    const double alpha = 1.01;
    const std::uint64_t cap = 2;
    zipf_sampler z(alpha);
    int fallbacks = 0, accepts = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        rng g = rng::seeded(seed * 2654435761ULL);
        rng replay = g;
        const std::uint64_t x = z.sample_capped(g, cap);
        ASSERT_GE(x, 1u);
        ASSERT_LE(x, cap);
        // Manual replay per the documented contract.
        std::uint64_t manual = 0;
        for (int attempt = 0; attempt < zipf_sampler::kMaxRejections; ++attempt) {
            const std::uint64_t y = z(replay);
            if (y <= cap) {
                manual = y;
                ++accepts;
                break;
            }
        }
        if (manual == 0) {
            // One uniform drives the fallback; with cap = 2 the inverse CDF
            // is simply "1 iff u <= 1^{-α} = 1".
            const double u = replay.uniform() * harmonic(cap, alpha);
            manual = (1.0 >= u) ? 1 : 2;
            ++fallbacks;
        }
        EXPECT_EQ(x, manual) << "seed=" << seed;
        // The next raw draw must agree: this pins the *count* of draws
        // consumed, not merely the returned value.
        EXPECT_EQ(g(), replay()) << "seed=" << seed;
    }
    EXPECT_GT(accepts, 0);
    EXPECT_GT(fallbacks, 0);
}

TEST(ZipfAliasSampler, PmfBitIdenticalToTableSampler) {
    // The alias sampler accumulates the partition in the same index order as
    // the table sampler, so pmf and partition agree bit-for-bit — no
    // statistical slack needed; the table stays authoritative.
    for (const double alpha : {1.1, 1.5, 2.5, 3.0}) {
        for (const std::uint64_t cap :
             {std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{10}, std::uint64_t{50},
              std::uint64_t{1000}}) {
            zipf_table_sampler table(alpha, cap);
            zipf_alias_sampler alias(alpha, cap);
            ASSERT_EQ(alias.cap(), cap);
            EXPECT_EQ(alias.partition(), table.partition())
                << "alpha=" << alpha << " cap=" << cap;
            for (std::uint64_t k = 0; k <= cap + 1; ++k) {
                EXPECT_EQ(alias.pmf(k), table.pmf(k))
                    << "alpha=" << alpha << " cap=" << cap << " k=" << k;
            }
        }
    }
}

TEST(ZipfAliasSampler, ChiSquareAgreesWithTruncatedLaw) {
    // Goodness of fit of alias draws against the exact truncated law over
    // the (α, cap) grid the walk engine actually selects the alias for.
    // Tail bins with expected count < 5 are merged rightward as usual.
    for (const double alpha : {1.1, 1.5, 2.5, 3.0}) {
        for (const std::uint64_t cap :
             {std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{10}, std::uint64_t{50},
              std::uint64_t{1000}}) {
            zipf_table_sampler table(alpha, cap);
            zipf_alias_sampler alias(alpha, cap);
            rng g = rng::seeded(0xa11a5 + static_cast<std::uint64_t>(alpha * 100) + cap);
            const int n = 120000;
            std::vector<int> counts(cap + 1, 0);
            for (int i = 0; i < n; ++i) {
                const std::uint64_t x = alias(g);
                ASSERT_GE(x, 1u);
                ASSERT_LE(x, cap);
                ++counts[x];
            }
            double chi2 = 0.0;
            int bins = 0;
            double exp_bin = 0.0, obs_bin = 0.0;
            for (std::uint64_t k = 1; k <= cap; ++k) {
                exp_bin += static_cast<double>(n) * table.pmf(k);
                obs_bin += static_cast<double>(counts[k]);
                if (exp_bin >= 5.0 || k == cap) {
                    chi2 += (obs_bin - exp_bin) * (obs_bin - exp_bin) / exp_bin;
                    ++bins;
                    exp_bin = obs_bin = 0.0;
                }
            }
            const double df = std::max(1.0, static_cast<double>(bins - 1));
            // ~5-sigma band for a chi-square with df degrees of freedom.
            EXPECT_LT(chi2, df + 6.0 * std::sqrt(2.0 * df) + 3.0)
                << "alpha=" << alpha << " cap=" << cap << " bins=" << bins;
        }
    }
}

TEST(ZipfSampler, MeanMatchesZetaRatio) {
    // E[X] = ζ(α-1)/ζ(α) for α > 2.
    const double alpha = 3.5;
    zipf_sampler z(alpha);
    rng g = rng::seeded(7);
    const int n = 500000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(z(g));
    const double expected = riemann_zeta(alpha - 1.0) / riemann_zeta(alpha);
    EXPECT_NEAR(sum / n, expected, 0.02);
}

}  // namespace
}  // namespace levy
