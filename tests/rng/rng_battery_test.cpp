// A small statistical battery over the rng stack, using the library's own
// goodness-of-fit tools. Not a replacement for TestU01 — a regression net
// that catches gross seeding/output bugs.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/rng/rng_stream.h"
#include "src/stats/goodness_of_fit.h"

namespace levy {
namespace {

TEST(RngBattery, MonobitFrequency) {
    // Count of set bits over n·64 bits ~ Normal(n·32, n·16).
    rng g = rng::seeded(101);
    const int n = 100000;
    std::int64_t ones = 0;
    for (int i = 0; i < n; ++i) ones += std::popcount(g());
    const double mean = 32.0 * n;
    const double sigma = std::sqrt(16.0 * n);
    EXPECT_NEAR(static_cast<double>(ones), mean, 5.0 * sigma);
}

TEST(RngBattery, ByteChiSquareIsUniform) {
    rng g = rng::seeded(102);
    std::vector<std::uint64_t> counts(256, 0);
    const std::uint64_t n = 200000;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t x = g();
        for (int b = 0; b < 8; ++b) ++counts[(x >> (8 * b)) & 0xff];
    }
    const std::vector<double> probs(256, 1.0 / 256.0);
    const auto result = stats::chi_square_test(counts, probs, 8 * n);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(RngBattery, RunsTestOnBitstream) {
    // Number of 01/10 alternations in a fair bit sequence of length m is
    // ~ Normal(m/2, m/4).
    rng g = rng::seeded(103);
    const int m = 400000;
    int runs = 0;
    bool prev = g.coin();
    for (int i = 1; i < m; ++i) {
        const bool cur = g.coin();
        runs += (cur != prev);
        prev = cur;
    }
    const double mean = (m - 1) / 2.0;
    const double sigma = std::sqrt((m - 1) / 4.0);
    EXPECT_NEAR(static_cast<double>(runs), mean, 5.0 * sigma);
}

TEST(RngBattery, SerialCorrelationOfUniformsIsTiny) {
    rng g = rng::seeded(104);
    const int n = 200000;
    double prev = g.uniform();
    double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double cur = g.uniform();
        sum_xy += prev * cur;
        sum_x += prev;
        sum_x2 += prev * prev;
        prev = cur;
    }
    const double mean = sum_x / n;
    const double var = sum_x2 / n - mean * mean;
    const double cov = sum_xy / n - mean * mean;
    const double corr = cov / var;
    EXPECT_LT(std::abs(corr), 0.01);  // 4.5σ ≈ 0.01 at n = 2e5
}

TEST(RngBattery, SubstreamsAreCrossUncorrelated) {
    const rng master = rng::seeded(105);
    rng a = master.substream(1);
    rng b = master.substream(2);
    const int n = 100000;
    double dot = 0.0;
    for (int i = 0; i < n; ++i) {
        dot += (a.uniform() - 0.5) * (b.uniform() - 0.5);
    }
    // E = 0, sigma = sqrt(n)/12 for the sum.
    EXPECT_LT(std::abs(dot), 5.0 * std::sqrt(static_cast<double>(n)) / 12.0);
}

TEST(RngBattery, KsUniformityOfDoubles) {
    rng g1 = rng::seeded(106), g2 = rng::seeded(107);
    std::vector<double> a, b;
    for (int i = 0; i < 5000; ++i) {
        a.push_back(g1.uniform());
        b.push_back(g2.uniform());
    }
    EXPECT_GT(stats::ks_p_value(a, b), 1e-4);
}

}  // namespace
}  // namespace levy
