#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/rng/zeta.h"

namespace levy {
namespace {

TEST(RiemannZeta, KnownValues) {
    EXPECT_NEAR(riemann_zeta(2.0), std::numbers::pi * std::numbers::pi / 6.0, 1e-10);
    EXPECT_NEAR(riemann_zeta(3.0), 1.2020569031595942854, 1e-10);
    EXPECT_NEAR(riemann_zeta(4.0), std::pow(std::numbers::pi, 4) / 90.0, 1e-10);
    EXPECT_NEAR(riemann_zeta(6.0), std::pow(std::numbers::pi, 6) / 945.0, 1e-9);
}

TEST(RiemannZeta, NearOneBlowsUpLikeOneOverSMinusOne) {
    // ζ(s) ~ 1/(s-1) + γ as s → 1⁺ (γ = Euler–Mascheroni).
    constexpr double kGamma = 0.5772156649015329;
    EXPECT_NEAR(riemann_zeta(1.01), 1.0 / 0.01 + kGamma, 0.01);
    EXPECT_NEAR(riemann_zeta(1.1), 1.0 / 0.1 + kGamma, 0.05);
}

TEST(RiemannZeta, RejectsInvalidArguments) {
    EXPECT_THROW((void)riemann_zeta(1.0), std::invalid_argument);
    EXPECT_THROW((void)riemann_zeta(0.5), std::invalid_argument);
}

TEST(RiemannZeta, MonotoneDecreasingTowardOne) {
    // ζ is strictly decreasing on (1, ∞) and → 1 as s → ∞.
    double prev = riemann_zeta(1.5);
    for (double s = 2.0; s <= 12.0; s += 0.5) {
        const double z = riemann_zeta(s);
        EXPECT_LT(z, prev);
        prev = z;
    }
    EXPECT_NEAR(riemann_zeta(30.0), 1.0, 1e-9);
}

TEST(Harmonic, SmallValuesExact) {
    EXPECT_DOUBLE_EQ(harmonic(0, 2.0), 0.0);
    EXPECT_DOUBLE_EQ(harmonic(1, 2.0), 1.0);
    EXPECT_NEAR(harmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-14);
    EXPECT_NEAR(harmonic(4, 2.0), 1.0 + 0.25 + 1.0 / 9.0 + 1.0 / 16.0, 1e-14);
}

class HarmonicLargeN : public ::testing::TestWithParam<double> {};

TEST_P(HarmonicLargeN, MatchesDirectSummation) {
    const double s = GetParam();
    const std::uint64_t n = 100000;
    double direct = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) direct += std::pow(static_cast<double>(k), -s);
    EXPECT_NEAR(harmonic(n, s), direct, std::abs(direct) * 1e-10 + 1e-10) << "s=" << s;
}

// Covers the ballistic (s = α-1 < 1), Cauchy (s = 1), and super-diffusive
// ranges that mean_capped exercises.
INSTANTIATE_TEST_SUITE_P(Exponents, HarmonicLargeN,
                         ::testing::Values(0.2, 0.5, 0.9, 1.0, 1.1, 1.5, 2.0, 2.5, 3.0));

TEST(ZetaTail, FirstTermIsWholeSeries) {
    EXPECT_NEAR(zeta_tail(1, 2.5), riemann_zeta(2.5), 1e-12);
}

TEST(ZetaTail, ConsistentWithHarmonicComplement) {
    for (const std::uint64_t i : {2ULL, 5ULL, 17ULL, 100ULL, 5000ULL}) {
        const double s = 2.2;
        EXPECT_NEAR(zeta_tail(i, s), riemann_zeta(s) - harmonic(i - 1, s), 1e-10) << "i=" << i;
    }
}

TEST(ZetaTail, MatchesAsymptoticShape) {
    // Σ_{k≥i} k^{-s} ≈ i^{1-s}/(s-1) for large i (Eq. 4's Θ(1/i^{α-1})).
    const double s = 2.5;
    for (const std::uint64_t i : {1000ULL, 10000ULL}) {
        const double expected = std::pow(static_cast<double>(i), 1.0 - s) / (s - 1.0);
        EXPECT_NEAR(zeta_tail(i, s) / expected, 1.0, 0.01) << "i=" << i;
    }
}

TEST(ZetaTail, StrictlyDecreasingInI) {
    double prev = zeta_tail(1, 3.0);
    for (std::uint64_t i = 2; i < 40; ++i) {
        const double t = zeta_tail(i, 3.0);
        EXPECT_LT(t, prev);
        prev = t;
    }
}

}  // namespace
}  // namespace levy
