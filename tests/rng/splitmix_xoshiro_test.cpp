#include <gtest/gtest.h>

#include <set>

#include "src/rng/splitmix64.h"
#include "src/rng/xoshiro256pp.h"

namespace levy {
namespace {

TEST(Splitmix64, MatchesReferenceVector) {
    // Reference outputs for seed 0 from the author's public-domain code.
    splitmix64 g(0);
    EXPECT_EQ(g(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(g(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(g(), 0x06c45d188009454fULL);
}

TEST(Splitmix64, DistinctSeedsDiverge) {
    splitmix64 a(1), b(2);
    EXPECT_NE(a(), b());
}

TEST(Splitmix64, IsDeterministic) {
    splitmix64 a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Mix64, InjectiveOnSmallDomain) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(Mix64, TwoArgOrderMatters) {
    EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

TEST(Mix64, TwoArgDistinctPairsDiverge) {
    std::set<std::uint64_t> seen;
    for (std::uint64_t a = 0; a < 64; ++a) {
        for (std::uint64_t b = 0; b < 64; ++b) seen.insert(mix64(a, b));
    }
    EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(Xoshiro256pp, IsDeterministicPerSeed) {
    xoshiro256pp a(42), b(42);
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro256pp, SeedsProduceDifferentStreams) {
    xoshiro256pp a(42), b(43);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += (a() == b());
    EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256pp, ExplicitStateRoundTrips) {
    xoshiro256pp a(7);
    a();  // advance a bit
    xoshiro256pp b(a.state());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, JumpLeavesOriginalSequenceClass) {
    // After a jump the generator must not reproduce the pre-jump prefix.
    xoshiro256pp a(99);
    xoshiro256pp b(99);
    b.jump();
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += (a() == b());
    EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256pp, BitsLookBalanced) {
    // Crude sanity: across 64k outputs, each bit position is set ~50% of the
    // time. Catches gross seeding/output bugs, not statistical subtleties.
    xoshiro256pp g(2024);
    int counts[64] = {};
    const int n = 65536;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = g();
        for (int bit = 0; bit < 64; ++bit) counts[bit] += (x >> bit) & 1;
    }
    for (int bit = 0; bit < 64; ++bit) {
        EXPECT_NEAR(static_cast<double>(counts[bit]) / n, 0.5, 0.02) << "bit " << bit;
    }
}

}  // namespace
}  // namespace levy
