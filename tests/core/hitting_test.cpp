#include <gtest/gtest.h>

#include "src/baselines/simple_random_walk.h"
#include "src/core/hitting.h"
#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(Hitting, TimeZeroWhenStartingOnTarget) {
    levy_walk w(2.5, rng::seeded(1), {4, 4});
    const auto r = hit_within(w, point{4, 4}, 100);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.time, 0u);
    EXPECT_EQ(w.steps(), 0u);  // no step consumed
}

TEST(Hitting, BudgetZeroOnlyDetectsStart) {
    levy_walk w(2.5, rng::seeded(2));
    const auto r = hit_within(w, point{1, 0}, 0);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.time, 0u);
}

TEST(Hitting, MissReportsBudget) {
    levy_walk w(2.5, rng::seeded(3));
    const auto r = hit_within(w, point{1000000, 1000000}, 50);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.time, 50u);
    EXPECT_EQ(w.steps(), 50u);
}

TEST(Hitting, HitTimeMatchesStepCount) {
    // Whenever a hit is reported, the process's own step counter agrees.
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        levy_walk w(2.2, rng::seeded(seed));
        const auto r = hit_within(w, point{3, 0}, 5000);
        if (r.hit) {
            EXPECT_EQ(w.steps(), r.time);
            EXPECT_EQ(w.position(), (point{3, 0}));
        } else {
            EXPECT_EQ(w.steps(), 5000u);
        }
    }
}

TEST(Hitting, AdjacentTargetHitQuicklyMostOfTheTime) {
    int hits = 0;
    const int trials = 200;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
        levy_walk w(2.5, rng::seeded(1000 + seed));
        hits += hit_within(w, point{1, 0}, 200).hit;
    }
    // The first move of the first non-stay phase lands on one of 4 specific
    // neighbors with decent probability; 200 steps give many phases.
    EXPECT_GT(hits, trials / 4);
}

TEST(Hitting, WorksForFlights) {
    levy_flight f(2.5, rng::seeded(4), {2, 2});
    const auto r = hit_within(f, point{2, 2}, 10);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.time, 0u);
}

TEST(Hitting, WorksForBaselines) {
    baselines::simple_random_walk srw(rng::seeded(5));
    const auto r = hit_within(srw, point_target{{1, 0}}, 1000);
    // A SRW on Z² visits a fixed neighbor within 1000 steps with very high
    // probability; with this fixed seed it must simply be deterministic.
    EXPECT_TRUE(r.hit);
    EXPECT_GE(r.time, 1u);
}

TEST(Hitting, DiscTargetTriggersOnBoundary) {
    levy_walk w(2.5, rng::seeded(6));
    const disc_target t{{0, 3}, 2};  // contains (0,1)
    const auto r = hit_within(w, t, 5000);
    if (r.hit) {
        EXPECT_LE(l1_distance(w.position(), t.center), t.radius);
    }
}

TEST(Hitting, ResultEqualityOperator) {
    EXPECT_EQ((hit_result{true, 5}), (hit_result{true, 5}));
    EXPECT_NE((hit_result{true, 5}), (hit_result{false, 5}));
}

TEST(Hitting, WalkChecksIntermediateNodesOfAPhase) {
    // Force a long first phase by seeding until one occurs; the walk must
    // detect a target strictly inside the jump segment. Run many walks
    // against a target on the x-axis at distance 2: if the walk ever makes
    // a jump of length >= 2 passing through (2,0) it must report the hit at
    // the moment of crossing, i.e. position == target at the reported time.
    int verified = 0;
    for (std::uint64_t seed = 0; seed < 300 && verified < 20; ++seed) {
        levy_walk w(2.0, rng::seeded(2000 + seed));
        const auto r = hit_within(w, point{2, 0}, 400);
        if (r.hit && w.current_jump_length() > 2) {
            // Hit mid-phase: the phase is longer than the target distance.
            EXPECT_EQ(w.position(), (point{2, 0}));
            ++verified;
        }
    }
    EXPECT_GE(verified, 1);
}

}  // namespace
}  // namespace levy
