#include <gtest/gtest.h>

#include <cmath>

#include "src/core/strategy.h"

namespace levy {
namespace {

TEST(FixedExponent, AlwaysReturnsAlpha) {
    const auto s = fixed_exponent(2.4);
    rng g = rng::seeded(1);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(s(i, g), 2.4);
}

TEST(FixedExponent, RejectsInvalidAlpha) {
    EXPECT_THROW(fixed_exponent(1.0), std::invalid_argument);
    EXPECT_THROW(fixed_exponent(0.0), std::invalid_argument);
}

TEST(UniformExponent, StaysInDefaultInterval) {
    const auto s = uniform_exponent();
    rng g = rng::seeded(2);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double a = s(0, g);
        ASSERT_GE(a, 2.0);
        ASSERT_LT(a, 3.0);
        sum += a;
    }
    EXPECT_NEAR(sum / n, 2.5, 0.01);
}

TEST(UniformExponent, CustomInterval) {
    const auto s = uniform_exponent(1.5, 1.6);
    rng g = rng::seeded(3);
    for (int i = 0; i < 1000; ++i) {
        const double a = s(0, g);
        ASSERT_GE(a, 1.5);
        ASSERT_LT(a, 1.6);
    }
}

TEST(UniformExponent, RejectsBadInterval) {
    EXPECT_THROW(uniform_exponent(0.5, 2.0), std::invalid_argument);
    EXPECT_THROW(uniform_exponent(2.5, 2.5), std::invalid_argument);
}

TEST(OptimalAlpha, MatchesCorollaryFormula) {
    // α* = 3 − log k / log ℓ.
    EXPECT_NEAR(optimal_alpha(64.0, 4096.0), 3.0 - std::log(64.0) / std::log(4096.0), 1e-12);
    // k = ℓ → α* = 2; k = 1 → α* = 3.
    EXPECT_DOUBLE_EQ(optimal_alpha(1000.0, 1000.0), 2.0);
    EXPECT_DOUBLE_EQ(optimal_alpha(1.0, 1000.0), 3.0);
}

TEST(OptimalAlpha, ClampsOutsideSuperdiffusiveRange) {
    // k ≫ ℓ would give α < 2: clamp to the ballistic threshold (Thm 1.5(c)).
    EXPECT_DOUBLE_EQ(optimal_alpha(1e6, 100.0), 2.0);
    // k < 1 impossible; k = 1 caps at 3 (Thm 1.5(b)).
    EXPECT_DOUBLE_EQ(optimal_alpha(1.0, 10.0), 3.0);
}

TEST(OptimalAlpha, MonotoneInK) {
    double prev = 4.0;
    for (double k = 2.0; k <= 1024.0; k *= 2.0) {
        const double a = optimal_alpha(k, 1 << 20);
        EXPECT_LT(a, prev);
        prev = a;
    }
}

TEST(OptimalAlpha, RejectsBadArguments) {
    EXPECT_THROW((void)optimal_alpha(0.5, 100.0), std::invalid_argument);
    EXPECT_THROW((void)optimal_alpha(10.0, 1.0), std::invalid_argument);
}

TEST(OptimalAlphaAdjusted, AddsPositiveCorrection) {
    // The +5 log log ℓ / log ℓ term only fits inside (2,3) at asymptotic
    // scales (it needs log ℓ ≳ 38); use theorem-regime magnitudes.
    const double k = 1e10, ell = 1e17;
    EXPECT_GT(optimal_alpha_adjusted(k, ell), optimal_alpha(k, ell));
    const double log_ell = std::log(ell);
    const double expected = 3.0 - std::log(k) / log_ell + 5.0 * std::log(log_ell) / log_ell;
    ASSERT_LT(expected, 3.0);  // not clamped at this scale
    EXPECT_NEAR(optimal_alpha_adjusted(k, ell), expected, 1e-12);
}

TEST(OptimalAlphaAdjusted, ClampsAtLaptopScales) {
    // At bench-scale (k, ℓ) the correction overshoots 3 and clamps — the
    // benches therefore sweep α explicitly instead of trusting the formula.
    EXPECT_DOUBLE_EQ(optimal_alpha_adjusted(64.0, 4096.0), 3.0);
}

TEST(OptimalAlphaAdjusted, StillClampedToThree) {
    EXPECT_DOUBLE_EQ(optimal_alpha_adjusted(1.0, 100.0), 3.0);
}

TEST(RoundRobinExponent, CyclesThroughGridMidpoints) {
    const auto s = round_robin_exponent(2.0, 3.0, 4);
    rng g = rng::seeded(20);
    EXPECT_DOUBLE_EQ(s(0, g), 2.125);
    EXPECT_DOUBLE_EQ(s(1, g), 2.375);
    EXPECT_DOUBLE_EQ(s(2, g), 2.625);
    EXPECT_DOUBLE_EQ(s(3, g), 2.875);
    EXPECT_DOUBLE_EQ(s(4, g), 2.125);  // wraps
}

TEST(RoundRobinExponent, StaysInsideInterval) {
    const auto s = round_robin_exponent(2.0, 3.0, 7);
    rng g = rng::seeded(21);
    for (std::size_t i = 0; i < 50; ++i) {
        const double a = s(i, g);
        EXPECT_GT(a, 2.0);
        EXPECT_LT(a, 3.0);
    }
}

TEST(RoundRobinExponent, IsDeterministic) {
    const auto s = round_robin_exponent();
    rng g1 = rng::seeded(22), g2 = rng::seeded(23);
    for (std::size_t i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(s(i, g1), s(i, g2));
}

TEST(RoundRobinExponent, RejectsBadArguments) {
    EXPECT_THROW(round_robin_exponent(0.5, 3.0, 4), std::invalid_argument);
    EXPECT_THROW(round_robin_exponent(2.0, 2.0, 4), std::invalid_argument);
    EXPECT_THROW(round_robin_exponent(2.0, 3.0, 0), std::invalid_argument);
}

TEST(DiscreteExponent, DrawsOnlyFromMenu) {
    const auto s = discrete_exponent({2.2, 2.5, 2.8});
    rng g = rng::seeded(24);
    int seen[3] = {};
    for (int i = 0; i < 3000; ++i) {
        const double a = s(0, g);
        if (a == 2.2) ++seen[0];
        else if (a == 2.5) ++seen[1];
        else if (a == 2.8) ++seen[2];
        else FAIL() << "off-menu alpha " << a;
    }
    // Roughly uniform over the menu.
    for (int c : seen) EXPECT_NEAR(c, 1000, 150);
}

TEST(DiscreteExponent, RejectsBadMenus) {
    EXPECT_THROW(discrete_exponent({}), std::invalid_argument);
    EXPECT_THROW(discrete_exponent({2.5, 1.0}), std::invalid_argument);
}

TEST(Strategies, UniformDrawsAreIndependentAcrossStreams) {
    const auto s = uniform_exponent();
    rng g1 = rng::seeded(10), g2 = rng::seeded(11);
    EXPECT_NE(s(0, g1), s(0, g2));
}

}  // namespace
}  // namespace levy
