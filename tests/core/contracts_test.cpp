#include "src/core/contracts.h"

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/regression.h"
#include "src/stats/summary.h"

namespace {

#if !LEVY_CONTRACTS
#error "contracts_test.cpp must be compiled with contracts enabled"
#endif

TEST(Contracts, PreconditionThrowsContractViolation) {
    EXPECT_THROW(LEVY_PRECONDITION(1 + 1 == 3, "arithmetic is broken"),
                 levy::contract_violation);
}

TEST(Contracts, AssertionThrowsContractViolation) {
    EXPECT_THROW(LEVY_ASSERT(false, "always fires"), levy::contract_violation);
}

TEST(Contracts, PassingConditionIsSilent) {
    EXPECT_NO_THROW(LEVY_PRECONDITION(true, "never fires"));
    EXPECT_NO_THROW(LEVY_ASSERT(2 > 1, "never fires"));
}

TEST(Contracts, ViolationIsAnInvalidArgument) {
    // Callers that predate the contract layer catch std::invalid_argument;
    // the derivation keeps them working unchanged.
    EXPECT_THROW(LEVY_PRECONDITION(false, "compat"), std::invalid_argument);
}

TEST(Contracts, ViolationCarriesMetadata) {
    try {
        LEVY_PRECONDITION(1 < 0, "message for the caller");
        FAIL() << "precondition did not fire";
    } catch (const levy::contract_violation& e) {
        EXPECT_STREQ(e.kind(), "precondition");
        EXPECT_STREQ(e.expression(), "1 < 0");
        EXPECT_NE(std::string(e.file()).find("contracts_test.cpp"), std::string::npos);
        EXPECT_GT(e.line(), 0);
        EXPECT_NE(std::string(e.what()).find("message for the caller"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1 < 0"), std::string::npos);
    }
}

TEST(Contracts, ConditionIsEvaluatedExactlyOnce) {
    int calls = 0;
    LEVY_PRECONDITION(++calls > 0, "side effect must run once");
    EXPECT_EQ(calls, 1);
}

TEST(Contracts, LibraryEntryPointsFireThem) {
    EXPECT_THROW(static_cast<void>(levy::stats::quantile(std::vector<double>{}, 0.5)),
                 levy::contract_violation);
    const std::vector<double> xs{1.0};
    const std::vector<double> ys{1.0, 2.0};
    EXPECT_THROW(static_cast<void>(levy::stats::linear_fit(xs, ys)),
                 levy::contract_violation);
}

}  // namespace
