#include <gtest/gtest.h>

#include <cmath>

#include "src/core/levy_walk.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(LevyWalk, StartsWhereTold) {
    levy_walk w(2.5, rng::seeded(1), {5, 5});
    EXPECT_EQ(w.position(), (point{5, 5}));
    EXPECT_EQ(w.steps(), 0u);
    EXPECT_EQ(w.phases(), 0u);
    EXPECT_FALSE(w.in_phase());
}

TEST(LevyWalk, EveryStepIsUnitOrStay) {
    levy_walk w(2.2, rng::seeded(2));
    point prev = w.position();
    for (int i = 0; i < 20000; ++i) {
        const point next = w.step();
        ASSERT_LE(l1_distance(prev, next), 1);
        prev = next;
    }
    EXPECT_EQ(w.steps(), 20000u);
}

TEST(LevyWalk, PhaseTraversesExactlyItsJumpLength) {
    levy_walk w(2.0, rng::seeded(3));
    for (int phase = 0; phase < 500; ++phase) {
        ASSERT_FALSE(w.in_phase());
        const point phase_start = w.position();
        w.step();  // begins a new phase
        const std::uint64_t d = w.current_jump_length();
        if (d == 0) {
            EXPECT_EQ(w.position(), phase_start);
            EXPECT_FALSE(w.in_phase());
            continue;
        }
        std::uint64_t steps_in_phase = 1;
        while (w.in_phase()) {
            w.step();
            ++steps_in_phase;
        }
        EXPECT_EQ(steps_in_phase, d);
        EXPECT_EQ(l1_distance(phase_start, w.position()), static_cast<std::int64_t>(d));
    }
}

TEST(LevyWalk, StayPutPhasesHappenHalfTheTime) {
    levy_walk w(3.0, rng::seeded(4));
    int zero_phases = 0;
    const int phases = 20000;
    for (int p = 0; p < phases; ++p) {
        w.step();
        if (w.current_jump_length() == 0) {
            ++zero_phases;
            continue;
        }
        while (w.in_phase()) w.step();
    }
    EXPECT_NEAR(static_cast<double>(zero_phases) / phases, 0.5, 0.02);
}

TEST(LevyWalk, PhaseCounterMatchesManualCount) {
    levy_walk w(2.5, rng::seeded(5));
    std::uint64_t manual = 0;
    for (int i = 0; i < 10000; ++i) {
        if (!w.in_phase()) ++manual;
        w.step();
    }
    EXPECT_EQ(w.phases(), manual);
}

TEST(LevyWalk, CapBoundsPhaseDisplacement) {
    const std::uint64_t cap = 10;
    levy_walk w(1.5, rng::seeded(6), origin, cap);
    for (int i = 0; i < 30000; ++i) {
        w.step();
        ASSERT_LE(w.current_jump_length(), cap);
    }
}

TEST(LevyWalk, DeterministicGivenSeed) {
    levy_walk a(2.5, rng::seeded(7)), b(2.5, rng::seeded(7));
    for (int i = 0; i < 5000; ++i) ASSERT_EQ(a.step(), b.step());
}

TEST(LevyWalk, DiffusiveScalingForLargeAlpha) {
    // α = 6: variance is finite, so after t steps the typical displacement
    // is Θ(√t). Check the mean squared displacement is near-linear in t.
    const int trials = 400;
    const std::uint64_t t = 4000;
    double msd = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
        levy_walk w(6.0, rng::seeded(100 + static_cast<std::uint64_t>(trial)));
        for (std::uint64_t i = 0; i < t; ++i) w.step();
        msd += static_cast<double>(l2_norm_sq(w.position()));
    }
    msd /= trials;
    // Var per *jump* is small for α=6 and phases are short; the MSD after t
    // unit steps is c·t with c well below 10. The point is the order of
    // magnitude: far below the ballistic t² = 1.6e7.
    EXPECT_LT(msd, 100.0 * static_cast<double>(t));
    EXPECT_GT(msd, 0.01 * static_cast<double>(t));
}

TEST(LevyWalk, BallisticAlphaCoversDistanceLinearly) {
    // α = 1.2: a single phase is typically enormous, so after t steps the
    // walk is at distance ≈ t from the origin most of the time.
    int far = 0;
    const int trials = 200;
    const std::uint64_t t = 2000;
    for (int trial = 0; trial < trials; ++trial) {
        levy_walk w(1.2, rng::seeded(900 + static_cast<std::uint64_t>(trial)));
        for (std::uint64_t i = 0; i < t; ++i) w.step();
        far += (l1_norm(w.position()) > static_cast<std::int64_t>(t) / 4);
    }
    EXPECT_GT(far, trials / 2);
}

TEST(LevyWalk, AlphaAccessor) {
    levy_walk w(2.75, rng::seeded(8));
    EXPECT_DOUBLE_EQ(w.alpha(), 2.75);
    EXPECT_EQ(w.cap(), kNoCap);
}

}  // namespace
}  // namespace levy
