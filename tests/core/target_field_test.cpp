#include <gtest/gtest.h>

#include <cmath>

#include "src/core/target_field.h"

namespace levy {
namespace {

TEST(TargetField, RejectsBadDensity) {
    EXPECT_THROW(random_target_field(0.0, 1), std::invalid_argument);
    EXPECT_THROW(random_target_field(1.0, 1), std::invalid_argument);
    EXPECT_THROW(random_target_field(-0.5, 1), std::invalid_argument);
}

TEST(TargetField, DeterministicPerSeed) {
    const random_target_field a(0.01, 42), b(0.01, 42);
    for (std::int64_t x = -50; x <= 50; ++x) {
        for (std::int64_t y = -50; y <= 50; ++y) {
            ASSERT_EQ(a.contains({x, y}), b.contains({x, y}));
        }
    }
}

TEST(TargetField, SeedsGiveDifferentFields) {
    const random_target_field a(0.05, 1), b(0.05, 2);
    int differ = 0;
    for (std::int64_t x = 0; x < 100; ++x) {
        for (std::int64_t y = 0; y < 100; ++y) {
            differ += (a.contains({x, y}) != b.contains({x, y}));
        }
    }
    EXPECT_GT(differ, 0);
}

TEST(TargetField, EmpiricalDensityMatches) {
    const double density = 0.02;
    const random_target_field field(density, 7);
    std::uint64_t targets = 0;
    const std::int64_t half = 250;  // 501^2 ≈ 251k sites
    for (std::int64_t x = -half; x <= half; ++x) {
        for (std::int64_t y = -half; y <= half; ++y) {
            targets += field.contains({x, y});
        }
    }
    const double n = static_cast<double>((2 * half + 1) * (2 * half + 1));
    const double observed = static_cast<double>(targets) / n;
    const double sigma = std::sqrt(density * (1 - density) / n);
    EXPECT_NEAR(observed, density, 5.0 * sigma);
}

TEST(TargetField, ConsumeRemovesTarget) {
    random_target_field field(0.3, 9);
    // Find some target site.
    point site{0, 0};
    bool found = false;
    for (std::int64_t x = 0; x < 100 && !found; ++x) {
        if (field.contains({x, 0})) {
            site = {x, 0};
            found = true;
        }
    }
    ASSERT_TRUE(found);
    field.consume(site);
    EXPECT_FALSE(field.contains(site));
    EXPECT_EQ(field.consumed(), 1u);
}

TEST(TargetField, ConsumingNonTargetIsNoop) {
    random_target_field field(0.001, 10);
    // With density 1e-3, (1,1) is almost surely not a target under this
    // seed; make the test robust by scanning for a non-target.
    point site{0, 0};
    for (std::int64_t x = 0; x < 100; ++x) {
        if (!field.contains({x, 0})) {
            site = {x, 0};
            break;
        }
    }
    field.consume(site);
    EXPECT_EQ(field.consumed(), 0u);
}

TEST(TargetField, DensityAccessor) {
    EXPECT_DOUBLE_EQ(random_target_field(0.25, 1).density(), 0.25);
}

}  // namespace
}  // namespace levy
