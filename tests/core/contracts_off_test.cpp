// Compiled with LEVY_CONTRACTS=0 (see tests/CMakeLists.txt): verifies the
// release form of the macros — no throw, no evaluation of the condition.
#include "src/core/contracts.h"

#include <gtest/gtest.h>

namespace {

#if LEVY_CONTRACTS
#error "contracts_off_test.cpp must be compiled with LEVY_CONTRACTS=0"
#endif

TEST(ContractsOff, FailingConditionsAreNoOps) {
    EXPECT_NO_THROW(LEVY_PRECONDITION(false, "compiled out"));
    EXPECT_NO_THROW(LEVY_ASSERT(1 == 2, "compiled out"));
}

TEST(ContractsOff, ConditionIsNotEvaluated) {
    int calls = 0;
    LEVY_PRECONDITION(++calls > 0, "unevaluated operand");
    LEVY_ASSERT(++calls > 0, "unevaluated operand");
    EXPECT_EQ(calls, 0);
}

TEST(ContractsOff, OperandsStillNameTheirVariables) {
    // The compiled-out form must keep the condition's operands "used" so
    // -Werror=unused-* stays quiet in release builds.
    const int threshold = 3;
    LEVY_PRECONDITION(threshold > 0, "threshold referenced only here");
    SUCCEED();
}

}  // namespace
