#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/core/levy_flight.h"
#include "src/grid/ring.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(LevyFlight, StartsWhereTold) {
    levy_flight f(2.5, rng::seeded(1), {3, -2});
    EXPECT_EQ(f.position(), (point{3, -2}));
    EXPECT_EQ(f.steps(), 0u);
}

TEST(LevyFlight, OneStepPerJump) {
    levy_flight f(2.5, rng::seeded(2));
    for (std::uint64_t t = 1; t <= 100; ++t) {
        f.step();
        EXPECT_EQ(f.steps(), t);
    }
}

TEST(LevyFlight, StepMovesByLastJumpLength) {
    levy_flight f(2.2, rng::seeded(3));
    point prev = f.position();
    for (int i = 0; i < 2000; ++i) {
        const point next = f.step();
        EXPECT_EQ(l1_distance(prev, next), static_cast<std::int64_t>(f.last_jump_length()));
        prev = next;
    }
}

TEST(LevyFlight, JumpLengthsFollowEquationThree) {
    levy_flight f(2.5, rng::seeded(4));
    const int n = 200000;
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < n; ++i) {
        f.step();
        ++counts[f.last_jump_length()];
    }
    for (const std::uint64_t k : {0ULL, 1ULL, 2ULL}) {
        const double expected = f.jumps().pmf(k);
        const double observed = static_cast<double>(counts[k]) / n;
        const double sigma = std::sqrt(expected * (1.0 - expected) / n);
        EXPECT_NEAR(observed, expected, 5.0 * sigma) << "k=" << k;
    }
}

TEST(LevyFlight, CapIsRespected) {
    levy_flight f(1.5, rng::seeded(5), origin, /*cap=*/25);
    for (int i = 0; i < 50000; ++i) {
        f.step();
        ASSERT_LE(f.last_jump_length(), 25u);
    }
}

TEST(LevyFlight, DestinationUniformOnRing) {
    // Conditioned on jump length 1, the destination is uniform over the 4
    // neighbors.
    levy_flight f(2.5, rng::seeded(6));
    std::map<std::uint64_t, int> side_counts;
    point prev = f.position();
    int ones = 0;
    for (int i = 0; i < 400000; ++i) {
        const point next = f.step();
        if (f.last_jump_length() == 1) {
            ++ones;
            ++side_counts[ring_index(prev, next)];
        }
        prev = next;
    }
    ASSERT_GT(ones, 1000);
    for (std::uint64_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(static_cast<double>(side_counts[j]) / ones, 0.25, 0.02) << "j=" << j;
    }
}

TEST(LevyFlight, DeterministicGivenSeed) {
    levy_flight a(2.7, rng::seeded(7)), b(2.7, rng::seeded(7));
    for (int i = 0; i < 500; ++i) ASSERT_EQ(a.step(), b.step());
}

TEST(LevyFlight, AccessorsReflectConstruction) {
    levy_flight f(2.25, rng::seeded(8), origin, 123);
    EXPECT_DOUBLE_EQ(f.alpha(), 2.25);
    EXPECT_EQ(f.cap(), 123u);
}

TEST(LevyFlight, StaysPutRoughlyHalfTheTime) {
    levy_flight f(3.0, rng::seeded(9));
    int stays = 0;
    const int n = 100000;
    point prev = f.position();
    for (int i = 0; i < n; ++i) {
        const point next = f.step();
        stays += (next == prev);
        prev = next;
    }
    EXPECT_NEAR(static_cast<double>(stays) / n, 0.5, 0.01);
}

}  // namespace
}  // namespace levy
