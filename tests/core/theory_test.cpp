#include <gtest/gtest.h>

#include <cmath>

#include "src/core/theory.h"

namespace levy::theory {
namespace {

TEST(Theory, TEllShape) {
    EXPECT_DOUBLE_EQ(t_ell(2.0, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(t_ell(3.0, 100.0), 10000.0);
    EXPECT_NEAR(t_ell(2.5, 100.0), std::pow(100.0, 1.5), 1e-9);
}

TEST(Theory, SuperdiffusiveProbDecreasesWithEll) {
    EXPECT_GT(superdiffusive_hit_prob(2.5, 100.0), superdiffusive_hit_prob(2.5, 1000.0));
}

TEST(Theory, SuperdiffusiveProbIncreasesWithAlpha) {
    // Closer to 3 → smaller ℓ^{3-α} penalty.
    EXPECT_LT(superdiffusive_hit_prob(2.2, 100.0), superdiffusive_hit_prob(2.8, 100.0));
}

TEST(Theory, EarlyHitQuadraticInT) {
    const double p1 = early_hit_prob(2.5, 100.0, 200.0);
    const double p2 = early_hit_prob(2.5, 100.0, 400.0);
    EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(Theory, EventualHitDominatesBudgetedHit) {
    EXPECT_GT(eventual_hit_prob(2.5, 100.0), superdiffusive_hit_prob(2.5, 100.0));
}

TEST(Theory, DiffusiveBudgetShape) {
    const double ell = 64.0;
    EXPECT_NEAR(diffusive_budget(ell), ell * ell * std::pow(std::log(ell), 2.0), 1e-9);
    EXPECT_NEAR(diffusive_hit_prob(ell), std::pow(std::log(ell), -4.0), 1e-12);
}

TEST(Theory, BallisticShapes) {
    const double ell = 128.0;
    EXPECT_NEAR(ballistic_hit_prob(ell), 1.0 / (ell * std::log(ell)), 1e-12);
    EXPECT_GT(ballistic_eventual_hit_prob(ell), ballistic_hit_prob(ell));
}

TEST(Theory, OptimalParallelBudgetImprovesWithK) {
    const double ell = 1024.0;
    EXPECT_GT(optimal_parallel_budget(4.0, ell), optimal_parallel_budget(64.0, ell));
}

TEST(Theory, ParallelBudgetFloorIsEll) {
    // For enormous k the budget approaches the ℓ term: no strategy beats
    // distance ℓ.
    EXPECT_GE(optimal_parallel_budget(1e12, 1000.0), 1000.0);
    EXPECT_GE(universal_lower_bound(1e12, 1000.0), 1000.0);
}

TEST(Theory, RandomStrategyWithinPolylogOfOptimal) {
    const double k = 256.0, ell = 4096.0;
    const double ratio = random_strategy_budget(k, ell) / optimal_parallel_budget(k, ell);
    const double log_ell = std::log(ell);
    EXPECT_GT(ratio, 0.9);              // never better than the oracle shape
    EXPECT_LT(ratio, 2.0 * log_ell);    // at most ~log ℓ worse
}

TEST(Theory, UniversalLowerBoundBelowUpperBounds) {
    const double k = 64.0, ell = 2048.0;
    EXPECT_LE(universal_lower_bound(k, ell), optimal_parallel_budget(k, ell));
    EXPECT_LE(universal_lower_bound(k, ell), random_strategy_budget(k, ell));
}

TEST(Theory, RejectsBadArguments) {
    EXPECT_THROW((void)t_ell(2.5, 1.0), std::invalid_argument);
    EXPECT_THROW((void)optimal_parallel_budget(0.0, 100.0), std::invalid_argument);
    EXPECT_THROW((void)universal_lower_bound(-1.0, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace levy::theory
