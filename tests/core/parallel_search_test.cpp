#include <gtest/gtest.h>

#include <cmath>

#include "src/core/levy_walk.h"
#include "src/core/parallel_search.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(ParallelSearch, SingleWalkMatchesDirectSimulation) {
    // k = 1 must reproduce exactly the walk driven by substream(0).
    const point target{20, 0};
    const std::uint64_t budget = 20000;
    const rng trial = rng::seeded(123);

    const auto via_parallel = parallel_hit(1, fixed_exponent(2.5), target, budget, trial);

    rng walk_stream = trial.substream(0);
    const double alpha = fixed_exponent(2.5)(0, walk_stream);
    levy_walk walk(alpha, walk_stream);
    const auto direct = hit_within(walk, target, budget);

    EXPECT_EQ(via_parallel.hit, direct.hit);
    EXPECT_EQ(via_parallel.time, direct.time);
    if (direct.hit) {
        EXPECT_EQ(via_parallel.winner, 0u);
        EXPECT_DOUBLE_EQ(via_parallel.winner_alpha, 2.5);
    }
}

TEST(ParallelSearch, MissLeavesNoWinner) {
    const auto r = parallel_hit(4, fixed_exponent(2.5), {1000000, 0}, 100, rng::seeded(1));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.time, 100u);
    EXPECT_EQ(r.winner, parallel_result::kNoWinner);
    EXPECT_TRUE(std::isnan(r.winner_alpha));
}

TEST(ParallelSearch, TargetAtOriginIsInstant) {
    const auto r = parallel_hit(8, fixed_exponent(2.5), origin, 100, rng::seeded(2));
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.time, 0u);
    EXPECT_EQ(r.winner, 0u);
}

TEST(ParallelSearch, DeterministicGivenSeed) {
    const auto a = parallel_hit(8, uniform_exponent(), {15, 0}, 5000, rng::seeded(3));
    const auto b = parallel_hit(8, uniform_exponent(), {15, 0}, 5000, rng::seeded(3));
    EXPECT_EQ(a.hit, b.hit);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.winner, b.winner);
}

TEST(ParallelSearch, WinnerTimeNeverExceedsBudget) {
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const auto r = parallel_hit(4, fixed_exponent(2.2), {10, 0}, 1000, rng::seeded(seed));
        EXPECT_LE(r.time, 1000u);
        if (r.hit) {
            EXPECT_LT(r.winner, 4u);
            EXPECT_DOUBLE_EQ(r.winner_alpha, 2.2);
        }
    }
}

TEST(ParallelSearch, MoreWalksHitMoreOften) {
    const point target{30, 0};
    const std::uint64_t budget = 3000;
    int hits_small = 0, hits_large = 0;
    const int trials = 150;
    for (std::uint64_t t = 0; t < trials; ++t) {
        hits_small += parallel_hit(2, fixed_exponent(2.5), target, budget,
                                   rng::seeded(10000 + t)).hit;
        hits_large += parallel_hit(32, fixed_exponent(2.5), target, budget,
                                   rng::seeded(20000 + t)).hit;
    }
    EXPECT_GT(hits_large, hits_small);
}

TEST(ParallelSearch, WinnerAlphaComesFromStrategy) {
    // With a random strategy, the winner's α must match what the strategy
    // deals to that index under the same trial stream.
    const rng trial = rng::seeded(4);
    const auto exponents = strategy_exponents(16, uniform_exponent(), trial);
    const auto r = parallel_hit(16, uniform_exponent(), {5, 0}, 5000, trial);
    if (r.hit && r.time > 0) {
        ASSERT_LT(r.winner, exponents.size());
        EXPECT_DOUBLE_EQ(r.winner_alpha, exponents[r.winner]);
    }
}

TEST(StrategyExponents, MatchesCountAndRange) {
    const auto alphas = strategy_exponents(10, uniform_exponent(), rng::seeded(5));
    ASSERT_EQ(alphas.size(), 10u);
    for (double a : alphas) {
        EXPECT_GE(a, 2.0);
        EXPECT_LT(a, 3.0);
    }
}

TEST(StrategyExponents, FixedStrategyIsConstant) {
    const auto alphas = strategy_exponents(5, fixed_exponent(2.8), rng::seeded(6));
    for (double a : alphas) EXPECT_DOUBLE_EQ(a, 2.8);
}

TEST(ParallelSearch, ZeroWalksNeverHit) {
    const auto r = parallel_hit(0, fixed_exponent(2.5), {5, 0}, 100, rng::seeded(7));
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.time, 100u);
}

}  // namespace
}  // namespace levy
