#include <gtest/gtest.h>

#include "src/core/intermittent.h"
#include "src/core/levy_walk.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(Intermittent, StartOnTargetIsImmediate) {
    levy_walk w(2.5, rng::seeded(1), {3, 3});
    const auto r = hit_within_intermittent(w, point_target{{3, 3}}, 100);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.time, 0u);
}

TEST(Intermittent, MissReportsBudget) {
    levy_walk w(2.5, rng::seeded(2));
    const auto r = hit_within_intermittent(w, point_target{{1000000, 0}}, 100);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.time, 100u);
}

TEST(Intermittent, OnlySensesAtPhaseBoundaries) {
    // An intermittent hit must coincide with the walk being between phases.
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        levy_walk w(2.0, rng::seeded(seed));
        const auto r = hit_within_intermittent(w, point_target{{4, 0}}, 2000);
        if (r.hit && r.time > 0) {
            EXPECT_FALSE(w.in_phase()) << "seed " << seed;
            EXPECT_EQ(w.position(), (point{4, 0}));
        }
    }
}

TEST(Intermittent, NeverBeatsContinuousSensing) {
    // Coupled runs (identical streams): continuous sensing detects at every
    // node the walk visits, so it can only hit earlier or equally.
    int both = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        levy_walk w_cont(2.2, rng::seeded(seed));
        levy_walk w_int(2.2, rng::seeded(seed));
        const point_target target{{5, 0}};
        const auto c = hit_within(w_cont, target, 3000);
        const auto i = hit_within_intermittent(w_int, target, 3000);
        if (i.hit) {
            ASSERT_TRUE(c.hit) << "seed " << seed;
            ASSERT_LE(c.time, i.time) << "seed " << seed;
            ++both;
        }
    }
    EXPECT_GT(both, 0);  // the comparison actually exercised hits
}

TEST(Intermittent, HitsLessOftenThanContinuousOnAverage) {
    int cont_hits = 0, int_hits = 0;
    const point_target target{{10, 0}};
    for (std::uint64_t seed = 0; seed < 400; ++seed) {
        levy_walk a(1.8, rng::seeded(5000 + seed));
        levy_walk b(1.8, rng::seeded(5000 + seed));
        cont_hits += hit_within(a, target, 500).hit;
        int_hits += hit_within_intermittent(b, target, 500).hit;
    }
    EXPECT_GT(cont_hits, int_hits);
}

}  // namespace
}  // namespace levy
