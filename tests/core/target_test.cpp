#include <gtest/gtest.h>

#include <vector>

#include "src/core/target.h"

namespace levy {
namespace {

TEST(PointTarget, ContainsOnlyItself) {
    constexpr point_target t{{3, -1}};
    EXPECT_TRUE(t.contains({3, -1}));
    EXPECT_FALSE(t.contains({3, 0}));
    EXPECT_FALSE(t.contains(origin));
}

TEST(PointTarget, EllIsL1Norm) {
    constexpr point_target t{{3, -4}};
    EXPECT_EQ(t.ell(), 7);
}

TEST(DiscTarget, RadiusZeroIsPoint) {
    constexpr disc_target t{{2, 2}, 0};
    EXPECT_TRUE(t.contains({2, 2}));
    EXPECT_FALSE(t.contains({2, 3}));
}

TEST(DiscTarget, L1Ball) {
    constexpr disc_target t{{0, 0}, 2};
    EXPECT_TRUE(t.contains({1, 1}));
    EXPECT_TRUE(t.contains({0, 2}));
    EXPECT_FALSE(t.contains({2, 1}));
}

TEST(SetTarget, InitializerList) {
    const set_target t{{1, 1}, {2, 2}, {-3, 0}};
    EXPECT_EQ(t.size(), 3u);
    EXPECT_TRUE(t.contains({2, 2}));
    EXPECT_FALSE(t.contains({2, 1}));
}

TEST(SetTarget, IteratorConstruction) {
    const std::vector<point> pts = {{0, 1}, {0, 2}, {0, 1}};  // duplicate collapses
    const set_target t(pts.begin(), pts.end());
    EXPECT_EQ(t.size(), 2u);
    EXPECT_TRUE(t.contains({0, 2}));
}

TEST(TargetConcept, AllTargetsModelIt) {
    static_assert(target_predicate<point_target>);
    static_assert(target_predicate<disc_target>);
    static_assert(target_predicate<set_target>);
    SUCCEED();
}

}  // namespace
}  // namespace levy
