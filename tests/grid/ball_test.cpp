#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

#include "src/grid/ball.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(Ball, SizeFormula) {
    EXPECT_EQ(ball_size(0), 1u);
    EXPECT_EQ(ball_size(1), 5u);
    EXPECT_EQ(ball_size(2), 13u);
    EXPECT_EQ(ball_size(10), 221u);
}

TEST(Box, SizeFormula) {
    EXPECT_EQ(box_size(0), 1u);
    EXPECT_EQ(box_size(1), 9u);
    EXPECT_EQ(box_size(4), 81u);
}

TEST(Ball, Membership) {
    const point c{2, 2};
    EXPECT_TRUE(in_ball(c, 3, {2, 2}));
    EXPECT_TRUE(in_ball(c, 3, {4, 3}));   // distance 3
    EXPECT_FALSE(in_ball(c, 3, {4, 4}));  // distance 4
}

TEST(Box, Membership) {
    const point c{0, 0};
    EXPECT_TRUE(in_box(c, 2, {2, -2}));
    EXPECT_FALSE(in_box(c, 2, {3, 0}));
}

TEST(Ball, BallInsideBoxInsideBiggerBall) {
    // B_d ⊆ Q_d ⊆ B_{2d}: the inclusion chain the proofs lean on.
    const std::int64_t d = 4;
    for_each_ball_node(origin, d, [&](point p) { EXPECT_TRUE(in_box(origin, d, p)); });
    for_each_box_node(origin, d, [&](point p) { EXPECT_TRUE(in_ball(origin, 2 * d, p)); });
}

class BallEnumeration : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(BallEnumeration, CountsAndDistancesMatch) {
    const std::int64_t d = GetParam();
    const point center{-1, 6};
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for_each_ball_node(center, d, [&](point p) {
        EXPECT_LE(l1_distance(center, p), d);
        seen.insert({p.x, p.y});
    });
    EXPECT_EQ(seen.size(), ball_size(d));
}

TEST_P(BallEnumeration, BoxCountsMatch) {
    const std::int64_t d = GetParam();
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for_each_box_node(origin, d, [&](point p) {
        EXPECT_LE(linf_distance(origin, p), d);
        seen.insert({p.x, p.y});
    });
    EXPECT_EQ(seen.size(), box_size(d));
}

INSTANTIATE_TEST_SUITE_P(Radii, BallEnumeration, ::testing::Values<std::int64_t>(0, 1, 2, 5, 12));

TEST(Ball, SamplingIsUniform) {
    const std::int64_t d = 3;  // 25 nodes
    rng g = rng::seeded(0x77);
    const int n = 250000;
    std::unordered_map<point, int, point_hash> counts;
    for (int i = 0; i < n; ++i) ++counts[sample_ball(origin, d, g)];
    EXPECT_EQ(counts.size(), ball_size(d));
    const double expected = static_cast<double>(n) / static_cast<double>(ball_size(d));
    for (const auto& [p, c] : counts) {
        EXPECT_LT(l1_norm(p), d + 1);
        const double sigma = std::sqrt(expected);
        EXPECT_NEAR(static_cast<double>(c), expected, 6.0 * sigma) << p.x << "," << p.y;
    }
}

TEST(Ball, SampleZeroRadiusIsCenter) {
    rng g = rng::seeded(2);
    EXPECT_EQ(sample_ball({9, -9}, 0, g), (point{9, -9}));
}

TEST(Ball, SampleLargeRadiusStaysInside) {
    rng g = rng::seeded(3);
    const std::int64_t d = 1000000;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_LE(l1_norm(sample_ball(origin, d, g)), d);
    }
}

TEST(Ball, SampleRejectsNegativeRadius) {
    rng g = rng::seeded(4);
    EXPECT_THROW((void)sample_ball(origin, -1, g), std::invalid_argument);
}

}  // namespace
}  // namespace levy
