#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/grid/direct_path.h"
#include "src/grid/ring.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

/// Lemma 3.2: if v is uniform on R_d(u) and a direct path u → v is sampled
/// uniformly, then for every 1 ≤ i < d and w ∈ R_i(u),
///
///     (i/d)·⌊d/i⌋ / (4i)  ≤  P(u_i = w)  ≤  (i/d)·⌈d/i⌉ / (4i).
///
/// In particular when i | d both bounds collapse to 1/(4i): the i-th node is
/// exactly uniform on its ring. We verify the uniform case tightly and the
/// general band with statistical slack.

struct intermediate_counts {
    std::vector<double> freq;  // frequency of each ring index of R_i
};

intermediate_counts sample_intermediate(std::int64_t d, std::int64_t i, int n,
                                        std::uint64_t seed) {
    rng g = rng::seeded(seed);
    std::vector<std::uint64_t> counts(ring_size(i), 0);
    for (int trial = 0; trial < n; ++trial) {
        const point v = sample_ring(origin, d, g);
        direct_path_stepper s(origin, v);
        point ui = origin;
        for (std::int64_t step = 0; step < i; ++step) ui = s.advance(g);
        ++counts[ring_index(origin, ui)];
    }
    intermediate_counts out;
    out.freq.reserve(counts.size());
    for (const std::uint64_t c : counts) {
        out.freq.push_back(static_cast<double>(c) / static_cast<double>(n));
    }
    return out;
}

class DividingIndex : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DividingIndex, IntermediateNodeIsUniformOnItsRing) {
    const std::int64_t d = 12;
    const std::int64_t i = GetParam();
    ASSERT_EQ(d % i, 0) << "test parameter must divide d";
    const int n = 200000;
    const auto result = sample_intermediate(d, i, n, /*seed=*/0xd1f + static_cast<std::uint64_t>(i));
    const double p = 1.0 / static_cast<double>(ring_size(i));
    const double sigma = std::sqrt(p * (1.0 - p) / n);
    for (std::size_t j = 0; j < result.freq.size(); ++j) {
        EXPECT_NEAR(result.freq[j], p, 5.0 * sigma) << "i=" << i << " ring index " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Divisors, DividingIndex, ::testing::Values<std::int64_t>(1, 2, 3, 4, 6));

class GeneralIndex : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GeneralIndex, FrequenciesStayInLemmaBand) {
    const std::int64_t d = 12;
    const std::int64_t i = GetParam();
    const int n = 200000;
    const auto result = sample_intermediate(d, i, n, /*seed=*/0xba2d + static_cast<std::uint64_t>(i));
    const double di = static_cast<double>(d) / static_cast<double>(i);
    const double lo =
        (static_cast<double>(i) / static_cast<double>(d)) * std::floor(di) / (4.0 * static_cast<double>(i));
    const double hi =
        (static_cast<double>(i) / static_cast<double>(d)) * std::ceil(di) / (4.0 * static_cast<double>(i));
    // 5-sigma statistical slack around the analytic band.
    const double sigma = std::sqrt(hi * (1.0 - hi) / n);
    for (std::size_t j = 0; j < result.freq.size(); ++j) {
        EXPECT_GE(result.freq[j], lo - 5.0 * sigma) << "i=" << i << " ring index " << j;
        EXPECT_LE(result.freq[j], hi + 5.0 * sigma) << "i=" << i << " ring index " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(NonDivisors, GeneralIndex, ::testing::Values<std::int64_t>(5, 7, 8, 9, 11));

TEST(DirectPathDistribution, FixedDestinationConcentratesOnSegment) {
    // For a fixed v (no averaging over R_d), the intermediate node must stay
    // within L2 distance ~1 of the segment point w_i — far from uniform.
    const point v{9, 3};
    const std::int64_t d = l1_norm(v);
    rng g = rng::seeded(0xf17ed);
    for (int trial = 0; trial < 2000; ++trial) {
        direct_path_stepper s(origin, v);
        for (std::int64_t i = 1; i <= d; ++i) {
            const point ui = s.advance(g);
            const double wx = static_cast<double>(i) * 9.0 / static_cast<double>(d);
            const double wy = static_cast<double>(i) * 3.0 / static_cast<double>(d);
            const double dist2 = std::hypot(static_cast<double>(ui.x) - wx,
                                            static_cast<double>(ui.y) - wy);
            ASSERT_LE(dist2, std::sqrt(2.0) + 1e-9);
        }
    }
}

}  // namespace
}  // namespace levy
