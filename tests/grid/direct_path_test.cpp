#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "src/grid/direct_path.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(DirectPath, EmptyWhenEndpointsCoincide) {
    direct_path_stepper s({3, 3}, {3, 3});
    EXPECT_TRUE(s.done());
    EXPECT_EQ(s.length(), 0);
    EXPECT_EQ(s.position(), (point{3, 3}));
}

TEST(DirectPath, AxisAlignedIsStraightLine) {
    rng g = rng::seeded(1);
    const auto path = sample_direct_path({0, 0}, {5, 0}, g);
    ASSERT_EQ(path.size(), 6u);
    for (std::int64_t i = 0; i <= 5; ++i) EXPECT_EQ(path[i], (point{i, 0}));
}

TEST(DirectPath, VerticalNegativeDirection) {
    rng g = rng::seeded(2);
    const auto path = sample_direct_path({1, 1}, {1, -3}, g);
    ASSERT_EQ(path.size(), 5u);
    for (std::int64_t i = 0; i <= 4; ++i) EXPECT_EQ(path[i], (point{1, 1 - i}));
}

using endpoint_case = std::tuple<std::int64_t, std::int64_t>;

class DirectPathValidity : public ::testing::TestWithParam<endpoint_case> {};

TEST_P(DirectPathValidity, IsAShortestLatticePathFollowingTheSegment) {
    const auto [dx, dy] = GetParam();
    const point from{-7, 11};
    const point to = from + point{dx, dy};
    const std::int64_t d = l1_distance(from, to);
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        rng g = rng::seeded(seed);
        const auto path = sample_direct_path(from, to, g);
        ASSERT_EQ(path.size(), static_cast<std::size_t>(d) + 1);
        EXPECT_EQ(path.front(), from);
        EXPECT_EQ(path.back(), to);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            ASSERT_TRUE(adjacent(path[i], path[i + 1])) << "i=" << i;
        }
        for (std::size_t i = 0; i < path.size(); ++i) {
            // u_i ∈ R_i(u): the path crosses each ring exactly once (Def. 3.1).
            ASSERT_EQ(l1_distance(from, path[i]), static_cast<std::int64_t>(i));
            // Bresenham invariant: each coordinate stays within 1 of the real
            // segment point w_i = from + (i/d)·(Δx, Δy).
            const double wx = static_cast<double>(from.x) +
                              static_cast<double>(i) * static_cast<double>(dx) / static_cast<double>(d);
            const double wy = static_cast<double>(from.y) +
                              static_cast<double>(i) * static_cast<double>(dy) / static_cast<double>(d);
            EXPECT_LE(std::abs(static_cast<double>(path[i].x) - wx), 1.0 + 1e-9);
            EXPECT_LE(std::abs(static_cast<double>(path[i].y) - wy), 1.0 + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Endpoints, DirectPathValidity,
    ::testing::Values(endpoint_case{5, 3}, endpoint_case{3, 5}, endpoint_case{-4, 9},
                      endpoint_case{9, -4}, endpoint_case{-6, -6}, endpoint_case{1, 1},
                      endpoint_case{12, 1}, endpoint_case{1, 12}, endpoint_case{-17, 23},
                      endpoint_case{100, 37}, endpoint_case{0, 7}, endpoint_case{-7, 0}));

TEST(DirectPath, StepperAccountingIsConsistent) {
    rng g = rng::seeded(5);
    direct_path_stepper s({0, 0}, {4, 3});
    EXPECT_EQ(s.length(), 7);
    EXPECT_EQ(s.destination(), (point{4, 3}));
    std::int64_t steps = 0;
    while (!s.done()) {
        const point p = s.advance(g);
        ++steps;
        EXPECT_EQ(s.taken(), steps);
        EXPECT_EQ(s.position(), p);
    }
    EXPECT_EQ(steps, 7);
    EXPECT_EQ(s.position(), (point{4, 3}));
}

TEST(DirectPath, DiagonalTieBreaksGoBothWays) {
    // From (0,0) to (1,1): both (1,0) and (0,1) are equidistant from w_1 =
    // (0.5, 0.5); over many samples both must appear.
    bool saw_x = false, saw_y = false;
    for (std::uint64_t seed = 0; seed < 64 && !(saw_x && saw_y); ++seed) {
        rng g = rng::seeded(seed);
        const auto path = sample_direct_path({0, 0}, {1, 1}, g);
        if (path[1] == point{1, 0}) saw_x = true;
        if (path[1] == point{0, 1}) saw_y = true;
    }
    EXPECT_TRUE(saw_x);
    EXPECT_TRUE(saw_y);
}

TEST(DirectPath, HugeJumpStaysExact) {
    // A ballistic-scale jump: positions remain on the ring at every probe.
    const std::int64_t big = 1LL << 40;
    rng g = rng::seeded(6);
    direct_path_stepper s({0, 0}, {big, big / 3});
    for (int i = 1; i <= 1000; ++i) {
        const point p = s.advance(g);
        ASSERT_EQ(l1_norm(p), i);
    }
    // The trajectory hugs the segment of slope 1/3 per unit x: after 1000
    // steps, x ≈ 750, y ≈ 250 within one unit.
    EXPECT_NEAR(static_cast<double>(s.position().x), 750.0, 2.0);
    EXPECT_NEAR(static_cast<double>(s.position().y), 250.0, 2.0);
}

TEST(DirectPath, DegenerateDeltasAreStraightAndConsumeNoRandomness) {
    // Δx = 0 or Δy = 0: a tie in the Bresenham comparison would need
    // px − py = i + 1 with px + py = i, which is impossible, so the stepper
    // must never draw a coin and must agree with sample_direct_path
    // node-for-node. Exhaustive over small grids, both axes, both signs,
    // including the empty d = 0 path.
    for (std::int64_t fx = -2; fx <= 2; ++fx) {
        for (std::int64_t fy = -2; fy <= 2; ++fy) {
            const point from{fx, fy};
            for (std::int64_t d = -6; d <= 6; ++d) {
                for (const bool horizontal : {true, false}) {
                    const point to = horizontal ? point{fx + d, fy} : point{fx, fy + d};
                    rng g = rng::seeded(0x5eed);
                    rng gs = rng::seeded(0x5eed);
                    const auto path = sample_direct_path(from, to, g);
                    direct_path_stepper s(from, to);
                    ASSERT_EQ(path.size(), static_cast<std::size_t>(std::abs(d)) + 1);
                    EXPECT_EQ(s.length(), std::abs(d));
                    EXPECT_EQ(s.destination(), to);
                    std::size_t i = 0;
                    EXPECT_EQ(s.position(), path[i]);
                    while (!s.done()) {
                        const point p = s.advance(gs);
                        ++i;
                        ASSERT_LT(i, path.size());
                        ASSERT_EQ(p, path[i]);
                        // The free axis never moves off the segment.
                        if (horizontal) {
                            EXPECT_EQ(p.y, fy);
                        } else {
                            EXPECT_EQ(p.x, fx);
                        }
                    }
                    EXPECT_EQ(i + 1, path.size());
                    // No ties → no coins: both streams are still at the
                    // starting position.
                    rng fresh = rng::seeded(0x5eed);
                    const std::uint64_t expect_next = fresh();
                    EXPECT_EQ(g(), expect_next) << "sample consumed randomness";
                    EXPECT_EQ(gs(), expect_next) << "stepper consumed randomness";
                }
            }
        }
    }
}

TEST(DirectPath, DeterministicGivenSeed) {
    rng g1 = rng::seeded(42), g2 = rng::seeded(42);
    EXPECT_EQ(sample_direct_path({0, 0}, {13, 8}, g1), sample_direct_path({0, 0}, {13, 8}, g2));
}

}  // namespace
}  // namespace levy
