#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/grid/ring.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

TEST(Ring, SizeFormula) {
    EXPECT_EQ(ring_size(0), 1u);
    EXPECT_EQ(ring_size(1), 4u);
    EXPECT_EQ(ring_size(7), 28u);
    EXPECT_EQ(ring_size(1000), 4000u);
}

TEST(Ring, NodeZeroIsEastCorner) {
    EXPECT_EQ(ring_node({0, 0}, 5, 0), (point{5, 0}));
    EXPECT_EQ(ring_node({2, 3}, 5, 0), (point{7, 3}));
}

TEST(Ring, CornersAtSideBoundaries) {
    const std::int64_t d = 6;
    EXPECT_EQ(ring_node(origin, d, 0), (point{d, 0}));
    EXPECT_EQ(ring_node(origin, d, static_cast<std::uint64_t>(d)), (point{0, d}));
    EXPECT_EQ(ring_node(origin, d, static_cast<std::uint64_t>(2 * d)), (point{-d, 0}));
    EXPECT_EQ(ring_node(origin, d, static_cast<std::uint64_t>(3 * d)), (point{0, -d}));
}

TEST(Ring, DegenerateRingZero) {
    EXPECT_EQ(ring_node({4, -4}, 0, 0), (point{4, -4}));
    EXPECT_THROW((void)ring_node({4, -4}, 0, 1), std::out_of_range);
}

TEST(Ring, RejectsBadArguments) {
    EXPECT_THROW((void)ring_node(origin, -1, 0), std::invalid_argument);
    EXPECT_THROW((void)ring_node(origin, 3, 12), std::out_of_range);
    EXPECT_THROW((void)ring_index(origin, origin), std::invalid_argument);
}

class RingEnumeration : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RingEnumeration, NodesAreDistinctAndAtCorrectDistance) {
    const std::int64_t d = GetParam();
    const point center{13, -8};
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for_each_ring_node(center, d, [&](point p) {
        EXPECT_EQ(l1_distance(center, p), d);
        seen.insert({p.x, p.y});
    });
    EXPECT_EQ(seen.size(), ring_size(d));
}

TEST_P(RingEnumeration, IndexNodeRoundTrip) {
    const std::int64_t d = GetParam();
    const point center{-5, 9};
    for (std::uint64_t j = 0; j < ring_size(d); ++j) {
        const point p = ring_node(center, d, j);
        if (d > 0) {
            EXPECT_EQ(ring_index(center, p), j) << "d=" << d << " j=" << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Radii, RingEnumeration,
                         ::testing::Values<std::int64_t>(1, 2, 3, 5, 8, 17, 50));

TEST(Ring, ConsecutiveIndicesAreDiagonalNeighbors) {
    // The diamond parameterization walks the ring contiguously: consecutive
    // indices differ by one diagonal move, i.e. L1 distance exactly 2,
    // including the wrap-around from the last index back to the first.
    const std::int64_t d = 9;
    for (std::uint64_t j = 0; j < ring_size(d); ++j) {
        const point a = ring_node(origin, d, j);
        const point b = ring_node(origin, d, (j + 1) % ring_size(d));
        EXPECT_EQ(l1_distance(a, b), 2) << "j=" << j;
    }
}

TEST(Ring, SamplingIsUniform) {
    const std::int64_t d = 5;
    rng g = rng::seeded(0x5a5a);
    const int n = 200000;
    std::vector<int> counts(ring_size(d), 0);
    for (int i = 0; i < n; ++i) ++counts[ring_index(origin, sample_ring(origin, d, g))];
    const double expected = static_cast<double>(n) / static_cast<double>(ring_size(d));
    for (std::uint64_t j = 0; j < ring_size(d); ++j) {
        // 5-sigma band around the uniform expectation.
        const double sigma = std::sqrt(expected * (1.0 - 1.0 / static_cast<double>(ring_size(d))));
        EXPECT_NEAR(static_cast<double>(counts[j]), expected, 5.0 * sigma) << "j=" << j;
    }
}

TEST(Ring, SamplingRingZeroReturnsCenter) {
    rng g = rng::seeded(1);
    EXPECT_EQ(sample_ring({3, 3}, 0, g), (point{3, 3}));
}

}  // namespace
}  // namespace levy
