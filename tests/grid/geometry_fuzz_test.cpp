#include <gtest/gtest.h>

#include <cmath>

#include "src/grid/ball.h"
#include "src/grid/direct_path.h"
#include "src/grid/ring.h"
#include "src/rng/rng_stream.h"

namespace levy {
namespace {

/// Randomized property sweeps over the geometric substrate: thousands of
/// random instances per invariant, deterministic seeds. These complement the
/// hand-picked cases in the sibling tests by walking the parameter space no
/// one thought to enumerate.

TEST(GeometryFuzz, RingIndexRoundTripsOnRandomNodes) {
    rng g = rng::seeded(0xf001);
    for (int i = 0; i < 20000; ++i) {
        const point center{g.uniform_int(-1000000, 1000000), g.uniform_int(-1000000, 1000000)};
        const std::int64_t d = g.uniform_int(1, 10000);
        const std::uint64_t j = g.below(ring_size(d));
        const point v = ring_node(center, d, j);
        ASSERT_EQ(l1_distance(center, v), d);
        ASSERT_EQ(ring_index(center, v), j);
    }
}

TEST(GeometryFuzz, BallSamplesAlwaysInside) {
    rng g = rng::seeded(0xf002);
    for (int i = 0; i < 20000; ++i) {
        const std::int64_t d = g.uniform_int(0, 100000);
        const point center{g.uniform_int(-1000, 1000), g.uniform_int(-1000, 1000)};
        ASSERT_LE(l1_distance(center, sample_ball(center, d, g)), d);
    }
}

TEST(GeometryFuzz, DirectPathsAreAlwaysShortestAndRingAligned) {
    rng g = rng::seeded(0xf003);
    for (int trial = 0; trial < 3000; ++trial) {
        const point from{g.uniform_int(-500, 500), g.uniform_int(-500, 500)};
        const point to = from + point{g.uniform_int(-60, 60), g.uniform_int(-60, 60)};
        direct_path_stepper s(from, to);
        point prev = from;
        std::int64_t steps = 0;
        while (!s.done()) {
            const point cur = s.advance(g);
            ++steps;
            ASSERT_TRUE(adjacent(prev, cur));
            ASSERT_EQ(l1_distance(from, cur), steps);  // one ring per step
            prev = cur;
        }
        ASSERT_EQ(steps, l1_distance(from, to));
        ASSERT_EQ(prev, to);
    }
}

TEST(GeometryFuzz, DirectPathsHugTheSegment) {
    // Bresenham invariant on random instances: every node within L∞
    // distance 1 of the real segment point at the same L1 parameter.
    rng g = rng::seeded(0xf004);
    for (int trial = 0; trial < 1000; ++trial) {
        const point from{g.uniform_int(-100, 100), g.uniform_int(-100, 100)};
        const std::int64_t dx = g.uniform_int(-200, 200);
        const std::int64_t dy = g.uniform_int(-200, 200);
        const point to = from + point{dx, dy};
        const std::int64_t d = l1_distance(from, to);
        if (d == 0) continue;
        direct_path_stepper s(from, to);
        std::int64_t i = 0;
        while (!s.done()) {
            const point cur = s.advance(g);
            ++i;
            const double wx = static_cast<double>(from.x) +
                              static_cast<double>(i) * static_cast<double>(dx) /
                                  static_cast<double>(d);
            const double wy = static_cast<double>(from.y) +
                              static_cast<double>(i) * static_cast<double>(dy) /
                                  static_cast<double>(d);
            ASSERT_LE(std::abs(static_cast<double>(cur.x) - wx), 1.0 + 1e-9);
            ASSERT_LE(std::abs(static_cast<double>(cur.y) - wy), 1.0 + 1e-9);
        }
    }
}

TEST(GeometryFuzz, RingEnumerationAgreesWithMembership) {
    rng g = rng::seeded(0xf005);
    for (int trial = 0; trial < 200; ++trial) {
        const std::int64_t d = g.uniform_int(1, 40);
        std::uint64_t counted = 0;
        for_each_ring_node(origin, d, [&](point p) {
            ASSERT_TRUE(in_ball(origin, d, p));
            ASSERT_FALSE(in_ball(origin, d - 1, p));
            ++counted;
        });
        ASSERT_EQ(counted, ring_size(d));
    }
}

TEST(GeometryFuzz, NormsSatisfyStandardInequalities) {
    rng g = rng::seeded(0xf006);
    for (int i = 0; i < 50000; ++i) {
        const point p{g.uniform_int(-1000000000, 1000000000),
                      g.uniform_int(-1000000000, 1000000000)};
        // ‖p‖∞ ≤ ‖p‖₁ ≤ 2‖p‖∞ on Z².
        ASSERT_LE(linf_norm(p), l1_norm(p));
        ASSERT_LE(l1_norm(p), 2 * linf_norm(p) + (p == origin ? 0 : 0));
        // Triangle inequality on random pairs.
        const point q{g.uniform_int(-1000000, 1000000), g.uniform_int(-1000000, 1000000)};
        ASSERT_LE(l1_distance(p, q), l1_norm(p) + l1_norm(q));
    }
}

}  // namespace
}  // namespace levy
