#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "src/grid/point.h"

namespace levy {
namespace {

TEST(Point, DefaultIsOrigin) {
    constexpr point p{};
    EXPECT_EQ(p, origin);
}

TEST(Point, Arithmetic) {
    constexpr point a{3, -4}, b{-1, 2};
    EXPECT_EQ(a + b, (point{2, -2}));
    EXPECT_EQ(a - b, (point{4, -6}));
    point c = a;
    c += b;
    EXPECT_EQ(c, (point{2, -2}));
    c -= b;
    EXPECT_EQ(c, a);
}

TEST(Point, Norms) {
    constexpr point p{3, -4};
    EXPECT_EQ(l1_norm(p), 7);
    EXPECT_EQ(linf_norm(p), 4);
    EXPECT_EQ(l2_norm_sq(p), 25);
    EXPECT_DOUBLE_EQ(l2_norm(p), 5.0);
    EXPECT_EQ(l1_norm(origin), 0);
    EXPECT_EQ(linf_norm(origin), 0);
}

TEST(Point, NormsAreConstexpr) {
    static_assert(l1_norm(point{1, -2}) == 3);
    static_assert(linf_norm(point{1, -2}) == 2);
    static_assert(abs64(-5) == 5);
    SUCCEED();
}

TEST(Point, Distances) {
    constexpr point a{1, 1}, b{4, -3};
    EXPECT_EQ(l1_distance(a, b), 7);
    EXPECT_EQ(linf_distance(a, b), 4);
    EXPECT_EQ(l1_distance(a, a), 0);
}

TEST(Point, Adjacency) {
    constexpr point p{5, 5};
    EXPECT_TRUE(adjacent(p, {6, 5}));
    EXPECT_TRUE(adjacent(p, {5, 4}));
    EXPECT_FALSE(adjacent(p, p));
    EXPECT_FALSE(adjacent(p, {6, 6}));
}

TEST(Point, StreamOutput) {
    std::ostringstream ss;
    ss << point{-2, 7};
    EXPECT_EQ(ss.str(), "(-2, 7)");
}

TEST(PointHash, WorksInUnorderedSet) {
    std::unordered_set<point, point_hash> s;
    for (std::int64_t x = -10; x <= 10; ++x) {
        for (std::int64_t y = -10; y <= 10; ++y) s.insert({x, y});
    }
    EXPECT_EQ(s.size(), 21u * 21u);
    EXPECT_TRUE(s.contains({0, 0}));
    EXPECT_FALSE(s.contains({11, 0}));
}

TEST(PointHash, LowCollisionOnGrid) {
    // All hashes distinct on a 101×101 patch (not guaranteed in general, but
    // any collision here would indicate a weak mix).
    std::unordered_set<std::size_t> hashes;
    point_hash h;
    for (std::int64_t x = -50; x <= 50; ++x) {
        for (std::int64_t y = -50; y <= 50; ++y) hashes.insert(h({x, y}));
    }
    EXPECT_EQ(hashes.size(), 101u * 101u);
}

TEST(Point, HugeCoordinatesDoNotOverflowNorms) {
    constexpr std::int64_t big = (1LL << 62) - 1;
    EXPECT_EQ(l1_norm(point{big, 0}), big);
    EXPECT_EQ(linf_norm(point{-big, big}), big);
}

}  // namespace
}  // namespace levy
