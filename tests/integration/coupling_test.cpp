#include <gtest/gtest.h>

#include "src/core/levy_walk.h"
#include "src/core/parallel_search.h"

namespace levy {
namespace {

/// Coupling tests: deterministic dominance relations that hold *per
/// realization* (not just in expectation) because walks are pure functions
/// of their streams. Stronger than any statistical test.

TEST(Coupling, HitProbabilityMonotoneInBudget) {
    // Same stream, larger budget ⇒ hit implies hit, time unchanged.
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        levy_walk w_small(2.4, rng::seeded(seed));
        levy_walk w_large(2.4, rng::seeded(seed));
        const auto small = hit_within(w_small, point{8, 0}, 500);
        const auto large = hit_within(w_large, point{8, 0}, 5000);
        if (small.hit) {
            ASSERT_TRUE(large.hit) << "seed " << seed;
            ASSERT_EQ(large.time, small.time) << "seed " << seed;
        }
    }
}

TEST(Coupling, ParallelTimeMonotoneInK) {
    // Walk i's stream depends only on (trial stream, i), so the fleet of
    // k+8 walks contains the fleet of k walks: the parallel minimum can
    // only improve, realization by realization.
    const point target{10, 0};
    const std::uint64_t budget = 3000;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const rng trial = rng::seeded(seed);
        const auto small = parallel_hit(4, fixed_exponent(2.4), target, budget, trial);
        const auto large = parallel_hit(12, fixed_exponent(2.4), target, budget, trial);
        if (small.hit) {
            ASSERT_TRUE(large.hit) << "seed " << seed;
            ASSERT_LE(large.time, small.time) << "seed " << seed;
        }
    }
}

TEST(Coupling, SupersetStrategiesKeepWinners) {
    // With identical per-index exponents, the k-prefix winner is preserved
    // unless a later walk strictly beats it.
    const point target{6, 0};
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const rng trial = rng::seeded(seed);
        const auto small = parallel_hit(3, uniform_exponent(), target, 2000, trial);
        const auto large = parallel_hit(9, uniform_exponent(), target, 2000, trial);
        if (small.hit) {
            ASSERT_TRUE(large.hit);
            if (large.time == small.time) {
                ASSERT_EQ(large.winner, small.winner) << "seed " << seed;
            } else {
                ASSERT_LT(large.time, small.time) << "seed " << seed;
                ASSERT_GE(large.winner, 3u) << "seed " << seed;
            }
        }
    }
}

TEST(Coupling, CapOnlyDelaysTheWalk) {
    // A capped walk draws the same phase sequence as its uncapped twin only
    // until the first over-cap jump, after which they diverge — but the cap
    // can never let the walk move farther per step. Check the per-step unit
    // bound survives under caps (structural invariant, all realizations).
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        levy_walk capped(1.8, rng::seeded(seed), origin, /*cap=*/5);
        point prev = capped.position();
        for (int s = 0; s < 2000; ++s) {
            const point next = capped.step();
            ASSERT_LE(l1_distance(prev, next), 1);
            prev = next;
        }
        ASSERT_LE(capped.current_jump_length(), 5u);
    }
}

}  // namespace
}  // namespace levy
