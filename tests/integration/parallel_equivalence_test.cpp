#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/levy_walk.h"
#include "src/core/parallel_search.h"

namespace levy {
namespace {

/// parallel_hit's shrinking-budget optimization must be *exactly*
/// distribution-preserving: since every walk's stream is a pure function of
/// (trial stream, walk index), the parallel result must coincide with the
/// minimum over k fully independent single-walk simulations at full budget.
TEST(ParallelEquivalence, MatchesMinOfIndependentWalks) {
    const point target{12, 0};
    const std::uint64_t budget = 4000;
    const std::size_t k = 8;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const rng trial = rng::seeded(seed);
        const auto via_parallel =
            parallel_hit(k, uniform_exponent(), target, budget, trial);

        // Reference: each walk simulated independently with the full budget.
        bool any_hit = false;
        std::uint64_t best_time = budget;
        std::size_t best_index = parallel_result::kNoWinner;
        for (std::size_t i = 0; i < k; ++i) {
            rng stream = trial.substream(i);
            const double alpha = uniform_exponent()(i, stream);
            levy_walk w(alpha, stream);
            const auto r = hit_within(w, target, budget);
            if (r.hit && (!any_hit || r.time < best_time)) {
                any_hit = true;
                best_time = r.time;
                best_index = i;
            }
        }

        ASSERT_EQ(via_parallel.hit, any_hit) << "seed " << seed;
        if (any_hit) {
            ASSERT_EQ(via_parallel.time, best_time) << "seed " << seed;
            ASSERT_EQ(via_parallel.winner, best_index) << "seed " << seed;
        }
    }
}

TEST(ParallelEquivalence, WalkOrderIsFixedByIndexNotExecution) {
    // Ties in hitting time resolve to the lowest index in both the
    // reference loop and parallel_hit (a walk must *strictly beat* the
    // incumbent). Spot-check determinism of the winner across repeats.
    const point target{3, 0};
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const auto a = parallel_hit(16, fixed_exponent(2.3), target, 1000, rng::seeded(seed));
        const auto b = parallel_hit(16, fixed_exponent(2.3), target, 1000, rng::seeded(seed));
        ASSERT_EQ(a.winner, b.winner);
        ASSERT_EQ(a.time, b.time);
    }
}

}  // namespace
}  // namespace levy
