#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/goodness_of_fit.h"
#include "src/stats/summary.h"

namespace levy {
namespace {

/// Definitions 3.3/3.4 prescribe the *same* law for jump lengths and
/// destinations; the walk differs only in traversing the jump step by step.
/// Hence the walk observed at its phase boundaries must be distributed like
/// the flight observed at its steps. These are the paper's "the process
/// restricted to the jump endpoints is a Lévy flight" claims (used, e.g.,
/// in the proof of Lemma 3.10).

/// Advance a walk to the end of its n-th completed phase; return position.
point walk_after_phases(levy_walk& w, int phases) {
    for (int p = 0; p < phases; ++p) {
        w.step();
        while (w.in_phase()) w.step();
    }
    return w.position();
}

TEST(WalkFlightEquivalence, RadialDistributionAfterOnePhaseMatchesOneJump) {
    const double alpha = 2.5;
    const int n = 200000;
    stats::running_summary walk_r, flight_r;
    std::vector<int> walk_zero(1, 0), flight_zero(1, 0);
    rng master = rng::seeded(0xe4a1);
    for (int i = 0; i < n; ++i) {
        levy_walk w(alpha, master.substream(2 * i));
        levy_flight f(alpha, master.substream(2 * i + 1));
        const auto wr = static_cast<double>(l1_norm(walk_after_phases(w, 1)));
        f.step();
        const auto fr = static_cast<double>(l1_norm(f.position()));
        // Heavy-tailed: compare medians/zero-fractions, not means.
        walk_zero[0] += (wr == 0.0);
        flight_zero[0] += (fr == 0.0);
        walk_r.add(std::min(wr, 100.0));   // winsorize the tail for a stable
        flight_r.add(std::min(fr, 100.0)); // mean comparison
    }
    EXPECT_NEAR(static_cast<double>(walk_zero[0]) / n,
                static_cast<double>(flight_zero[0]) / n, 0.01);
    EXPECT_NEAR(walk_r.mean(), flight_r.mean(), 0.05);
}

TEST(WalkFlightEquivalence, PhaseCountMatchesFlightSteps) {
    // After n completed phases the walk has begun exactly n phases.
    levy_walk w(2.2, rng::seeded(1));
    walk_after_phases(w, 57);
    EXPECT_EQ(w.phases(), 57u);
}

TEST(WalkFlightEquivalence, TimeAccountingDiffersAsDefined) {
    // The walk pays d steps per length-d phase, the flight pays 1: over the
    // same number of phases with α > 2 (finite mean ~ E[d | d>=1] mixed with
    // the 1/2 atom), walk time ≈ phases · (E[d]+1/2·1) > flight time.
    const int phases = 5000;
    levy_walk w(2.5, rng::seeded(2));
    walk_after_phases(w, phases);
    EXPECT_GT(w.steps(), static_cast<std::uint64_t>(phases));
    // And the per-phase average time is a small constant for α = 2.5.
    const double per_phase = static_cast<double>(w.steps()) / phases;
    EXPECT_LT(per_phase, 10.0);
    EXPECT_GE(per_phase, 1.0);
}

TEST(WalkFlightEquivalence, KolmogorovSmirnovOnRadialLaw) {
    // Formal two-sample test: the L1 radius after one walk phase vs after
    // one flight jump must come from the same distribution.
    const double alpha = 2.3;
    const int n = 20000;
    std::vector<double> walk_radii, flight_radii;
    walk_radii.reserve(n);
    flight_radii.reserve(n);
    rng master = rng::seeded(0xa5a5);
    for (int i = 0; i < n; ++i) {
        levy_walk w(alpha, master.substream(2 * i));
        levy_flight f(alpha, master.substream(2 * i + 1));
        walk_radii.push_back(static_cast<double>(l1_norm(walk_after_phases(w, 1))));
        f.step();
        flight_radii.push_back(static_cast<double>(l1_norm(f.position())));
    }
    EXPECT_GT(stats::ks_p_value(walk_radii, flight_radii), 1e-4);
}

TEST(WalkFlightEquivalence, KsDetectsWrongExponentAsControl) {
    // Sanity of the test itself: the same KS machinery must reject clearly
    // different laws (α = 2.1 vs α = 2.9 radial distributions).
    const int n = 20000;
    std::vector<double> a, b;
    rng master = rng::seeded(0xa6a6);
    for (int i = 0; i < n; ++i) {
        levy_flight f1(2.1, master.substream(2 * i));
        levy_flight f2(2.9, master.substream(2 * i + 1));
        f1.step();
        f2.step();
        a.push_back(static_cast<double>(l1_norm(f1.position())));
        b.push_back(static_cast<double>(l1_norm(f2.position())));
    }
    EXPECT_LT(stats::ks_p_value(a, b), 1e-6);
}

TEST(WalkFlightEquivalence, CappedProcessesAgreeToo) {
    const double alpha = 2.2;
    const std::uint64_t cap = 50;
    const int n = 100000;
    int walk_far = 0, flight_far = 0;
    rng master = rng::seeded(0xe4a2);
    for (int i = 0; i < n; ++i) {
        levy_walk w(alpha, master.substream(2 * i), origin, cap);
        levy_flight f(alpha, master.substream(2 * i + 1), origin, cap);
        walk_far += l1_norm(walk_after_phases(w, 1)) > 10;
        f.step();
        flight_far += l1_norm(f.position()) > 10;
    }
    EXPECT_NEAR(static_cast<double>(walk_far) / n, static_cast<double>(flight_far) / n, 0.01);
}

}  // namespace
}  // namespace levy
