#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/levy_walk.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"

namespace levy::sim {
namespace {

/// Coarse end-to-end checks that the headline theorem *shapes* show up at
/// laptop scale. The bench harness (bench/) measures these precisely; here
/// we pin qualitative orderings with wide margins so the suite stays fast
/// and deterministic (fixed seeds throughout).

TEST(TheoremShapes, NearOptimalExponentBeatsFarOffExponents) {
    // Cor 4.2: at (k, ℓ) = (16, 64), α* = 3 − log16/log64 ≈ 2.33. The two
    // far-off failure modes show up at different budgets at this scale:
    // α → 3 walks are too local to reach ℓ inside the optimal-order budget
    // Θ(ℓ²/k) (Cor 4.2(c)), while α → 2 walks do reach early but overshoot
    // and waste steps, which costs them only once the budget is generous
    // enough (ℓ²) for diffusion near α* to cash in (Cor 4.2(b)). Measuring
    // both margins at a single budget leaves one of them inside noise, so
    // each comparison runs at the budget where its effect is the signal.
    const std::int64_t ell = 64;
    const std::size_t k = 16;
    const double alpha_star = optimal_alpha(static_cast<double>(k), static_cast<double>(ell));

    const auto prob_at = [&](double alpha, std::uint64_t budget, std::uint64_t seed) {
        parallel_walk_config cfg;
        cfg.k = k;
        cfg.strategy = fixed_exponent(alpha);
        cfg.ell = ell;
        cfg.budget = budget;
        return parallel_hit_probability(cfg, {.trials = 800, .threads = 0, .seed = seed})
            .estimate();
    };

    const std::uint64_t tight = 4 * ell * ell / k;  // ~Θ(ℓ²/k)
    const auto generous = static_cast<std::uint64_t>(ell * ell);
    EXPECT_GT(prob_at(alpha_star, tight, 101), prob_at(2.97, tight, 103))
        << "alpha*=" << alpha_star;
    EXPECT_GT(prob_at(alpha_star, generous, 101), prob_at(2.02, generous, 102))
        << "alpha*=" << alpha_star;
}

TEST(TheoremShapes, ParallelSpeedupGrowsWithK) {
    // Thm 1.5 flavor: more walks, faster parallel hitting (median censored
    // time decreases markedly from k=2 to k=32).
    const std::int64_t ell = 48;
    const std::uint64_t budget = 20000;
    const auto median_time = [&](std::size_t k, std::uint64_t seed) {
        parallel_walk_config cfg;
        cfg.k = k;
        cfg.strategy = fixed_exponent(optimal_alpha(static_cast<double>(k),
                                                    static_cast<double>(ell)));
        cfg.ell = ell;
        cfg.budget = budget;
        const auto sample = parallel_hitting_times(cfg, {.trials = 120, .threads = 0, .seed = seed});
        return stats::median(sample.times);
    };
    const double t2 = median_time(2, 201);
    const double t32 = median_time(32, 202);
    EXPECT_LT(t32, t2 / 2.0);
}

TEST(TheoremShapes, RandomExponentStrategyWorksAcrossDistances) {
    // Thm 1.6: with no knowledge of ℓ, U(2,3) exponents find targets at both
    // ℓ=16 and ℓ=64 within the theorem's budget shape, w.h.p.
    for (const std::int64_t ell : {16L, 64L}) {
        parallel_walk_config cfg;
        cfg.k = 32;
        cfg.strategy = uniform_exponent();
        cfg.ell = ell;
        // 50× the universal lower bound ℓ²/k + ℓ — far below the theorem's
        // polylog-laden budget (which makes the test needlessly slow) but
        // empirically ample for w.h.p. hits at this scale.
        cfg.budget = static_cast<std::uint64_t>(
            50.0 * theory::universal_lower_bound(32.0, static_cast<double>(ell)));
        const auto p = parallel_hit_probability(
            cfg, {.trials = 240, .threads = 0, .seed = 300 + static_cast<std::uint64_t>(ell)});
        EXPECT_GT(p.estimate(), 0.6) << "ell=" << ell;
    }
}

TEST(TheoremShapes, RandomStrategyNearOracle) {
    // The randomized strategy's hit rate at matched budget is within a
    // modest factor of the oracle fixed-α* strategy.
    const std::int64_t ell = 64;
    const std::size_t k = 32;
    const std::uint64_t budget = 6 * ell * ell / k;
    parallel_walk_config oracle, randomized;
    oracle.k = randomized.k = k;
    oracle.ell = randomized.ell = ell;
    oracle.budget = randomized.budget = budget;
    oracle.strategy = fixed_exponent(optimal_alpha(static_cast<double>(k),
                                                   static_cast<double>(ell)));
    randomized.strategy = uniform_exponent();
    const auto p_oracle = parallel_hit_probability(oracle, {.trials = 150, .threads = 0, .seed = 401});
    const auto p_rand = parallel_hit_probability(randomized, {.trials = 150, .threads = 0, .seed = 402});
    EXPECT_GT(p_rand.estimate(), 0.25 * p_oracle.estimate());
}

TEST(TheoremShapes, BallisticRegimeCoversDistanceFast) {
    // Thm 1.3(a): with α ≤ 2 a single walk reaches distance ℓ in O(ℓ) steps
    // (it just rarely points at the target). Check the reach, not the hit:
    // max displacement within 4ℓ steps exceeds ℓ in most runs.
    const std::int64_t ell = 200;
    int reached = 0;
    const int trials = 100;
    for (int i = 0; i < trials; ++i) {
        levy_walk w(1.5, rng::seeded(500 + static_cast<std::uint64_t>(i)));
        std::int64_t max_disp = 0;
        for (std::int64_t s = 0; s < 4 * ell; ++s) {
            w.step();
            max_disp = std::max(max_disp, l1_norm(w.position()));
        }
        reached += (max_disp >= ell);
    }
    EXPECT_GT(reached, trials / 2);
}

TEST(TheoremShapes, DiffusiveWalksStayLocal) {
    // Thm 1.2 counterpart: α = 3.5 walks in t = ℓ steps rarely wander to
    // distance ℓ (they need ~ℓ² steps).
    const std::int64_t ell = 200;
    int reached = 0;
    const int trials = 100;
    for (int i = 0; i < trials; ++i) {
        levy_walk w(3.5, rng::seeded(600 + static_cast<std::uint64_t>(i)));
        std::int64_t max_disp = 0;
        for (std::int64_t s = 0; s < ell; ++s) {
            w.step();
            max_disp = std::max(max_disp, l1_norm(w.position()));
        }
        reached += (max_disp >= ell);
    }
    EXPECT_LT(reached, trials / 4);
}

}  // namespace
}  // namespace levy::sim
