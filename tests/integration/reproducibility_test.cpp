#include <gtest/gtest.h>

#include "src/sim/trial.h"

namespace levy::sim {
namespace {

TEST(Reproducibility, SingleWalkProbabilityIndependentOfThreads) {
    const single_walk_config cfg{.alpha = 2.5, .ell = 12, .budget = 1500};
    const auto p1 = single_hit_probability(cfg, {.trials = 400, .threads = 1, .seed = 11});
    const auto p8 = single_hit_probability(cfg, {.trials = 400, .threads = 8, .seed = 11});
    EXPECT_EQ(p1.successes, p8.successes);
}

TEST(Reproducibility, ParallelHittingTimesBitIdenticalAcrossThreads) {
    parallel_walk_config cfg;
    cfg.k = 8;
    cfg.strategy = uniform_exponent();
    cfg.ell = 16;
    cfg.budget = 4000;
    const auto a = parallel_hitting_times(cfg, {.trials = 120, .threads = 1, .seed = 21});
    const auto b = parallel_hitting_times(cfg, {.trials = 120, .threads = 6, .seed = 21});
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.times, b.times);
}

TEST(Reproducibility, DifferentSeedsGiveDifferentSamples) {
    parallel_walk_config cfg;
    cfg.k = 4;
    cfg.strategy = fixed_exponent(2.4);
    cfg.ell = 16;
    cfg.budget = 4000;
    const auto a = parallel_hitting_times(cfg, {.trials = 60, .threads = 2, .seed = 1});
    const auto b = parallel_hitting_times(cfg, {.trials = 60, .threads = 2, .seed = 2});
    EXPECT_NE(a.times, b.times);
}

TEST(Reproducibility, RerunIsExactlyStable) {
    // The full stack (strategy draws, walk phases, tie-breaks) replays
    // identically — the guarantee EXPERIMENTS.md relies on.
    parallel_walk_config cfg;
    cfg.k = 16;
    cfg.strategy = uniform_exponent();
    cfg.ell = 24;
    cfg.budget = 6000;
    const mc_options opts{.trials = 50, .threads = 0, .seed = 77};
    const auto a = parallel_hitting_times(cfg, opts);
    const auto b = parallel_hitting_times(cfg, opts);
    EXPECT_EQ(a.times, b.times);
}

}  // namespace
}  // namespace levy::sim
