#include <gtest/gtest.h>

#include <cmath>

#include "src/core/hitting.h"
#include "src/core/levy_walk.h"
#include "src/sim/monte_carlo.h"

namespace levy {
namespace {

/// The lattice, the jump law, the uniform ring sampling and the direct-path
/// tie-breaks are all invariant under the dihedral symmetries of Z², so the
/// hitting probability of a target depends only on its orbit. We verify the
/// four axis images of (ℓ, 0) and the four diagonal images of (a, a) agree.

double hit_probability(point target, std::uint64_t budget, std::size_t trials,
                       std::uint64_t seed) {
    const auto p = sim::estimate_probability(
        {.trials = trials, .threads = 0, .seed = seed}, [&](std::size_t, rng& g) {
            levy_walk w(2.5, g);
            return hit_within(w, target, budget).hit;
        });
    return p.estimate();
}

TEST(Symmetry, AxisTargetsAreEquallyLikely) {
    const std::int64_t ell = 8;
    const std::uint64_t budget = 600;
    const std::size_t trials = 4000;
    const double px = hit_probability({ell, 0}, budget, trials, 1);
    const double pnx = hit_probability({-ell, 0}, budget, trials, 2);
    const double py = hit_probability({0, ell}, budget, trials, 3);
    const double pny = hit_probability({0, -ell}, budget, trials, 4);
    ASSERT_GT(px, 0.01);  // sanity: the event is observable at this scale
    // 4-sigma binomial tolerance.
    const double tol = 4.0 * std::sqrt(px * (1.0 - px) / static_cast<double>(trials)) * 2.0;
    EXPECT_NEAR(pnx, px, tol);
    EXPECT_NEAR(py, px, tol);
    EXPECT_NEAR(pny, px, tol);
}

TEST(Symmetry, DiagonalTargetsAreEquallyLikely) {
    const std::int64_t a = 5;
    const std::uint64_t budget = 600;
    const std::size_t trials = 4000;
    const double p1 = hit_probability({a, a}, budget, trials, 5);
    const double p2 = hit_probability({-a, a}, budget, trials, 6);
    const double p3 = hit_probability({a, -a}, budget, trials, 7);
    const double p4 = hit_probability({-a, -a}, budget, trials, 8);
    ASSERT_GT(p1, 0.01);
    const double tol = 4.0 * std::sqrt(p1 * (1.0 - p1) / static_cast<double>(trials)) * 2.0;
    EXPECT_NEAR(p2, p1, tol);
    EXPECT_NEAR(p3, p1, tol);
    EXPECT_NEAR(p4, p1, tol);
}

TEST(Symmetry, TransposedTargetMatchesAxisSwap) {
    const std::uint64_t budget = 600;
    const std::size_t trials = 4000;
    const double p_36 = hit_probability({3, 6}, budget, trials, 9);
    const double p_63 = hit_probability({6, 3}, budget, trials, 10);
    ASSERT_GT(p_36, 0.005);
    const double tol = 4.0 * std::sqrt(p_36 * (1.0 - p_36) / static_cast<double>(trials)) * 2.0;
    EXPECT_NEAR(p_63, p_36, tol);
}

}  // namespace
}  // namespace levy
