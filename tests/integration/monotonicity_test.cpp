#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/core/levy_flight.h"
#include "src/grid/point.h"
#include "src/sim/monte_carlo.h"

namespace levy {
namespace {

/// Lemma 3.9 (monotonicity): for a monotone radial jump process — the Lévy
/// flight qualifies — and any nodes u, v with ‖v‖∞ ≥ ‖u‖₁,
/// P(J_t = u) ≥ P(J_t = v) at every step t. We estimate occupancy
/// probabilities by Monte Carlo and check the ordering with statistical
/// slack on several (u, v) pairs straddling different distance scales.

struct occupancy {
    std::uint64_t at_u = 0;
    std::uint64_t at_v = 0;
};

occupancy estimate(double alpha, std::uint64_t t, point u, point v, std::size_t trials,
                   std::uint64_t seed) {
    const auto hits = sim::monte_carlo_collect(
        {.trials = trials, .threads = 0, .seed = seed}, [&](std::size_t, rng& g) {
            levy_flight f(alpha, g);
            for (std::uint64_t i = 0; i < t; ++i) f.step();
            const point p = f.position();
            return (p == u) ? 1 : (p == v) ? 2 : 0;
        });
    occupancy out;
    for (int h : hits) {
        out.at_u += (h == 1);
        out.at_v += (h == 2);
    }
    return out;
}

struct mono_case {
    point u;
    point v;
};

class Monotonicity : public ::testing::TestWithParam<mono_case> {};

TEST_P(Monotonicity, CloserNodesAreMoreOccupied) {
    const auto [u, v] = GetParam();
    ASSERT_GE(linf_norm(v), l1_norm(u)) << "test case violates lemma precondition";
    const std::size_t trials = 400000;
    const auto occ = estimate(2.2, /*t=*/4, u, v,
                              trials, /*seed=*/0x3939 + static_cast<std::uint64_t>(l1_norm(u)));
    // Allow 4 binomial sigmas of slack on the difference.
    const double pu = static_cast<double>(occ.at_u) / static_cast<double>(trials);
    const double pv = static_cast<double>(occ.at_v) / static_cast<double>(trials);
    const double sigma = std::sqrt((pu + pv) / static_cast<double>(trials));
    EXPECT_GE(pu + 4.0 * sigma, pv) << "u=(" << u.x << "," << u.y << ") occupancy " << pu
                                    << " vs v=(" << v.x << "," << v.y << ") occupancy " << pv;
}

INSTANTIATE_TEST_SUITE_P(Pairs, Monotonicity,
                         ::testing::Values(mono_case{{1, 0}, {0, 3}},   // ‖u‖₁=1 ≤ ‖v‖∞=3
                                           mono_case{{1, 1}, {2, 2}},   // 2 ≤ 2 (boundary)
                                           mono_case{{2, 0}, {4, 4}},   // 2 ≤ 4
                                           mono_case{{0, 2}, {-5, 1}},  // 2 ≤ 5
                                           mono_case{{3, 1}, {6, -6}}   // 4 ≤ 6
                                           ));

TEST(Monotonicity, OriginIsTheMostLikelyNode) {
    // ‖v‖∞ ≥ 0 = ‖0‖₁ for every v: the origin dominates everything.
    const std::size_t trials = 300000;
    const auto occ = estimate(2.5, /*t=*/3, origin, {1, 1}, trials, 0x111);
    EXPECT_GT(occ.at_u, occ.at_v);
}

TEST(Monotonicity, HoldsUnderJumpCapToo) {
    // Remark 4.9: the lemma survives conditioning on capped jumps.
    const std::size_t trials = 300000;
    const auto hits = sim::monte_carlo_collect(
        {.trials = trials, .threads = 0, .seed = 0x222}, [&](std::size_t, rng& g) {
            levy_flight f(2.2, g, origin, /*cap=*/20);
            for (int i = 0; i < 4; ++i) f.step();
            const point p = f.position();
            return (p == point{1, 0}) ? 1 : (p == point{0, 4}) ? 2 : 0;
        });
    std::uint64_t at_u = 0, at_v = 0;
    for (int h : hits) {
        at_u += (h == 1);
        at_v += (h == 2);
    }
    EXPECT_GT(at_u, at_v);
}

}  // namespace
}  // namespace levy
