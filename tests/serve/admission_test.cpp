#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/serve/admission.h"

namespace levy::serve {
namespace {

admission_options small_opts() {
    admission_options opts;
    opts.queue_capacity = 3;
    opts.reserved_bytes_per_request = 1024;
    return opts;
}

TEST(AdmissionQueue, ShedsWhenQueueIsFull) {
    admission_queue q(small_opts());
    EXPECT_EQ(q.try_admit(10), admit_result::admitted);
    EXPECT_EQ(q.try_admit(11), admit_result::admitted);
    EXPECT_EQ(q.try_admit(12), admit_result::admitted);
    EXPECT_EQ(q.try_admit(13), admit_result::shed_queue_full);
    const auto s = q.stats();
    EXPECT_EQ(s.admitted, 3u);
    EXPECT_EQ(s.shed_queue_full, 1u);
    EXPECT_EQ(s.shed_total(), 1u);
    q.shutdown();
    (void)q.drain();
}

TEST(AdmissionQueue, PopsInAdmissionOrderWithSequences) {
    admission_queue q(small_opts());
    ASSERT_EQ(q.try_admit(21), admit_result::admitted);
    ASSERT_EQ(q.try_admit(22), admit_result::admitted);
    auto a = q.pop();
    auto b = q.pop();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->fd, 21);
    EXPECT_EQ(a->sequence, 0u);
    EXPECT_EQ(b->fd, 22);
    EXPECT_EQ(b->sequence, 1u);
    q.release();
    q.release();
    q.shutdown();
}

TEST(AdmissionQueue, ByteBudgetShedsBeforeCapacityWhenTighter) {
    admission_options opts;
    opts.queue_capacity = 8;
    opts.reserved_bytes_per_request = 1024;
    opts.max_inflight_bytes = 2048;  // only two reservations fit
    admission_queue q(opts);
    EXPECT_EQ(q.try_admit(1), admit_result::admitted);
    EXPECT_EQ(q.try_admit(2), admit_result::admitted);
    EXPECT_EQ(q.try_admit(3), admit_result::shed_bytes_exhausted);
    EXPECT_EQ(q.reserved_bytes(), 2048u);
    EXPECT_EQ(q.stats().shed_bytes, 1u);
    q.shutdown();
    (void)q.drain();
}

TEST(AdmissionQueue, ReleaseReturnsReservationToTheBudget) {
    admission_options opts;
    opts.queue_capacity = 8;
    opts.reserved_bytes_per_request = 1024;
    opts.max_inflight_bytes = 1024;  // one at a time
    admission_queue q(opts);
    ASSERT_EQ(q.try_admit(1), admit_result::admitted);
    EXPECT_EQ(q.try_admit(2), admit_result::shed_bytes_exhausted);
    auto t = q.pop();
    ASSERT_TRUE(t.has_value());
    // Popping alone keeps the reservation (the request is in flight)...
    EXPECT_EQ(q.try_admit(3), admit_result::shed_bytes_exhausted);
    q.release();
    // ...release() frees it.
    EXPECT_EQ(q.try_admit(4), admit_result::admitted);
    q.shutdown();
    (void)q.drain();
}

TEST(AdmissionQueue, ShutdownWakesBlockedPoppersWithNullopt) {
    admission_queue q(small_opts());
    std::thread popper([&q] {
        const auto t = q.pop();  // blocks until shutdown
        EXPECT_FALSE(t.has_value());
    });
    q.shutdown();
    popper.join();
    EXPECT_EQ(q.try_admit(5), admit_result::shed_shutdown);
    EXPECT_EQ(q.stats().shed_shutdown, 1u);
}

TEST(AdmissionQueue, DrainReturnsQueuedNeverPoppedFds) {
    admission_queue q(small_opts());
    ASSERT_EQ(q.try_admit(31), admit_result::admitted);
    ASSERT_EQ(q.try_admit(32), admit_result::admitted);
    ASSERT_TRUE(q.pop().has_value());  // 31 in flight
    q.shutdown();
    const auto leftover = q.drain();
    ASSERT_EQ(leftover.size(), 1u);
    EXPECT_EQ(leftover.front(), 32);
    q.release();
}

TEST(AdmissionQueue, DepthTracksQueuedNotInFlight) {
    admission_queue q(small_opts());
    EXPECT_EQ(q.depth(), 0u);
    ASSERT_EQ(q.try_admit(41), admit_result::admitted);
    ASSERT_EQ(q.try_admit(42), admit_result::admitted);
    EXPECT_EQ(q.depth(), 2u);
    ASSERT_TRUE(q.pop().has_value());
    EXPECT_EQ(q.depth(), 1u);
    // The in-flight request still holds its reservation though.
    EXPECT_EQ(q.reserved_bytes(), 2u * 1024u);
    q.shutdown();
    (void)q.drain();
}

TEST(AdmissionQueue, AdmitResultNamesAreStable) {
    EXPECT_STREQ(admit_result_name(admit_result::admitted), "admitted");
    EXPECT_STREQ(admit_result_name(admit_result::shed_queue_full), "shed_queue_full");
    EXPECT_STREQ(admit_result_name(admit_result::shed_bytes_exhausted),
                 "shed_bytes_exhausted");
    EXPECT_STREQ(admit_result_name(admit_result::shed_shutdown), "shed_shutdown");
}

}  // namespace
}  // namespace levy::serve
