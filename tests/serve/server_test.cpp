#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/serve/server.h"

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

namespace levy::serve {
namespace {

std::string scratch_path(const char* name) {
    return std::string(::testing::TempDir()) + name;
}

serve_options fast_opts() {
    serve_options opts;
    opts.workers = 1;
    opts.steps_per_ms = 1000;
    opts.default_trials = 32;
    opts.default_deadline_ms = 60'000;
    opts.seed = 0xFEEDu;
    return opts;
}

http_request get(const std::string& path_and_query) {
    http_request req;
    const bool ok =
        parse_request_line("GET " + path_and_query + " HTTP/1.1", req);
    EXPECT_TRUE(ok) << path_and_query;
    return req;
}

bool body_has(const http_response& resp, const std::string& needle) {
    return resp.body.find(needle) != std::string::npos;
}

class ServerHandleTest : public ::testing::Test {
protected:
    // handle() is the socket-free worker entry point; no start() needed.
    server srv{fast_opts()};
    std::uint64_t seq = 0;

    http_response query(const std::string& q) { return srv.handle(get(q), seq++); }
};

TEST_F(ServerHandleTest, HealthzAndUnknownPath) {
    EXPECT_EQ(query("/healthz").status, 200);
    EXPECT_EQ(query("/nope").status, 404);
}

TEST_F(ServerHandleTest, ExactQueryReportsFullMonteCarlo) {
    const http_response resp =
        query("/query?alpha=2.5&ell=8&k=2&budget=500&trials=64&deadline_ms=60000");
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"quality\":\"exact\"")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"cached\":false")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"censored\":false")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"trials_run\":64")) << resp.body;
    EXPECT_EQ(srv.stats().exact, 1u);
}

TEST_F(ServerHandleTest, TightDeadlineAnswersRepeatQueryFromTheCache) {
    // A query whose full batch fits its deadline always recomputes (that is
    // what keeps restart replays byte-identical); the cache serves when the
    // deadline does NOT fit. Populate, then repeat under pressure.
    const std::string q = "/query?alpha=2.5&ell=8&k=2&budget=500&trials=64";
    const http_response first = query(q);
    ASSERT_EQ(first.status, 200) << first.body;
    const http_response tight = query(q + "&deadline_ms=1");
    ASSERT_EQ(tight.status, 200) << tight.body;
    EXPECT_TRUE(body_has(tight, "\"cached\":true")) << tight.body;
    EXPECT_TRUE(body_has(tight, "\"quality\":\"exact\"")) << tight.body;
    EXPECT_EQ(srv.stats().cache_hits, 1u);
    // The cached answer carries the estimate the full run produced.
    EXPECT_TRUE(body_has(first, "\"probability\":"));
}

TEST_F(ServerHandleTest, TightDeadlineInterpolatesFromNeighboringCells) {
    // Populate the two alpha grid cells bracketing 2.515 (pitch 1/32, so
    // corners 2.5 and 2.53125), both in the budget=500 octave cell (72).
    ASSERT_EQ(query("/query?alpha=2.5&ell=8&k=2&budget=500&trials=32").status, 200);
    ASSERT_EQ(query("/query?alpha=2.53125&ell=8&k=2&budget=500&trials=32").status, 200);
    // budget=470 rounds to octave cell 71 — empty, so the exact-cell rung
    // misses — while its ceil corner is the populated cell 72. With a
    // deadline too tight for a fresh run, the answer is a linear
    // interpolation between the two alpha corners along that budget row.
    const http_response resp =
        query("/query?alpha=2.515&ell=8&k=2&budget=470&trials=32&deadline_ms=1");
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"quality\":\"interpolated\"")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"grid_points\":2")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"trials_run\":0")) << resp.body;
    EXPECT_EQ(srv.stats().interpolated, 1u);
}

TEST_F(ServerHandleTest, TightDeadlineWithColdCacheDegradesAndSaysSo) {
    // Nothing cached anywhere near: the ladder bottoms out in a truncated
    // ("degraded") run whose step watchdog enforces the allowance.
    const http_response resp =
        query("/query?alpha=2.5&ell=64&k=2&budget=100000&trials=1000&deadline_ms=1");
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"quality\":\"degraded\"")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"max_steps\":")) << resp.body;
    EXPECT_EQ(srv.stats().degraded, 1u);
}

TEST_F(ServerHandleTest, BadParametersAnswer400NamingTheProblem) {
    EXPECT_EQ(query("/query?ell=8").status, 400);                  // missing alpha
    EXPECT_EQ(query("/query?alpha=2.5").status, 400);              // missing ell
    EXPECT_EQ(query("/query?alpha=0.5&ell=8").status, 400);        // alpha <= 1
    EXPECT_EQ(query("/query?alpha=2.5&ell=1").status, 400);        // ell < 2
    EXPECT_EQ(query("/query?alpha=2.5&ell=8&k=0").status, 400);    // k < 1
    EXPECT_EQ(query("/query?alpha=nan&ell=8").status, 400);        // non-finite
    EXPECT_EQ(query("/query?alpha=2.5&ell=8&trials=junk").status, 400);
    EXPECT_EQ(query("/query?alpha=2.5&ell=8&deadline_ms=0").status, 400);
    EXPECT_EQ(srv.stats().bad_requests, 8u);
    // Bad requests never start a Monte-Carlo run.
    EXPECT_EQ(srv.stats().exact + srv.stats().degraded, 0u);
}

TEST_F(ServerHandleTest, PlanAnswersTheoryNumbers) {
    const http_response resp = srv.handle(get("/plan?k=64&ell=1000"), seq++);
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"alpha_star\":")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"budget\":")) << resp.body;
    EXPECT_EQ(query("/plan?k=64").status, 400);  // missing ell
    // The counter tracks routed /plan requests, rejected ones included.
    EXPECT_EQ(srv.stats().plans, 2u);
}

TEST_F(ServerHandleTest, StatsEndpointReportsCounters) {
    ASSERT_EQ(query("/query?alpha=2.5&ell=8&k=2&budget=500&trials=16").status, 200);
    const http_response resp = query("/stats");
    ASSERT_EQ(resp.status, 200);
    EXPECT_TRUE(body_has(resp, "\"queries\":1")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"exact\":1")) << resp.body;
    EXPECT_TRUE(body_has(resp, "\"admitted\":")) << resp.body;
}

TEST_F(ServerHandleTest, SeedParameterSelectsTheStream) {
    const http_response a =
        query("/query?alpha=2.5&ell=8&k=2&budget=500&trials=64&seed=1");
    const http_response b =
        query("/query?alpha=2.5&ell=12&k=2&budget=500&trials=64&seed=2");
    ASSERT_EQ(a.status, 200);
    ASSERT_EQ(b.status, 200);
    EXPECT_TRUE(body_has(a, "\"seed\":\"0x0000000000000001\"")) << a.body;
    EXPECT_TRUE(body_has(b, "\"seed\":\"0x0000000000000002\"")) << b.body;
}

// The determinism contract behind the kill -9 selftest, in-process: same
// query + same server config + same persisted cache => same bytes, across
// a full save/destroy/reload cycle.
TEST(ServerRestart, AnswersAreByteIdenticalAcrossCacheReload) {
    const std::string path = scratch_path("server_restart_cache.bin");
    std::remove(path.c_str());
    serve_options opts = fast_opts();
    opts.cache_path = path;
    const std::string exact_q = "/query?alpha=2.5&ell=8&k=2&budget=500&trials=64";
    const std::string tight_q = exact_q + "&deadline_ms=1";

    std::string exact1, tight1;
    {
        server srv(opts);
        exact1 = srv.handle(get(exact_q), 0).body;   // full run, fills cache
        tight1 = srv.handle(get(tight_q), 1).body;   // answered from cache
        EXPECT_TRUE(tight1.find("\"cached\":true") != std::string::npos) << tight1;
        srv.flush_cache();
    }  // "restart": the first server instance is gone
    {
        server srv(opts);
        // start() loads the cache; handle() alone doesn't, so load here.
        EXPECT_GT(srv.cache().load(path), 0u);
        const std::string tight2 = srv.handle(get(tight_q), 0).body;
        const std::string exact2 = srv.handle(get(exact_q), 1).body;
        EXPECT_EQ(tight2, tight1);
        EXPECT_EQ(exact2, exact1);
    }
    std::remove(path.c_str());
}

TEST(ServerLifecycle, StartServesOverRealSocketsAndStopsIdempotently) {
    serve_options opts = fast_opts();
    opts.workers = 2;
    server srv(opts);
    const unsigned short port = srv.start();
    ASSERT_NE(port, 0u);
    int status = 0;
    const auto health = http_get(port, "/healthz", 5.0, &status);
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(status, 200);
    const auto ans =
        http_get(port, "/query?alpha=2.5&ell=8&k=2&budget=500&trials=16", 30.0, &status);
    ASSERT_TRUE(ans.has_value());
    EXPECT_EQ(status, 200) << *ans;
    srv.stop();
    srv.stop();  // idempotent
    EXPECT_FALSE(srv.running());
}

TEST(ServerOptions, ConstructorRejectsDegenerateConfigs) {
    const auto bad = [](auto mutate) {
        serve_options opts;
        mutate(opts);
        EXPECT_THROW(server s(opts), std::invalid_argument);
    };
    bad([](serve_options& o) { o.workers = 0; });
    bad([](serve_options& o) { o.queue_capacity = 0; });
    bad([](serve_options& o) { o.default_deadline_ms = 0; });
    bad([](serve_options& o) { o.steps_per_ms = 0; });
    bad([](serve_options& o) { o.default_trials = 0; });
    bad([](serve_options& o) { o.cache_flush_every = 0; });
}

}  // namespace
}  // namespace levy::serve

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS
