#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/serve/http.h"

#if LEVY_SERVE_HAVE_POSIX_SOCKETS
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace levy::serve {
namespace {

TEST(HttpParse, RequestLineSplitsPathAndQuery) {
    http_request req;
    ASSERT_TRUE(parse_request_line("GET /query?alpha=2.5&ell=64&k=8 HTTP/1.1", req));
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/query");
    ASSERT_EQ(req.query.size(), 3u);
    ASSERT_NE(req.param("alpha"), nullptr);
    EXPECT_EQ(*req.param("alpha"), "2.5");
    ASSERT_NE(req.param("ell"), nullptr);
    EXPECT_EQ(*req.param("ell"), "64");
    EXPECT_EQ(req.param("missing"), nullptr);
}

TEST(HttpParse, PercentDecodingAndValuelessKeys) {
    http_request req;
    ASSERT_TRUE(parse_request_line("GET /a%20b?x=1%2B2&flag HTTP/1.1", req));
    EXPECT_EQ(req.path, "/a b");
    ASSERT_NE(req.param("x"), nullptr);
    EXPECT_EQ(*req.param("x"), "1+2");
    ASSERT_NE(req.param("flag"), nullptr);
    EXPECT_EQ(*req.param("flag"), "");
}

TEST(HttpParse, RejectsMalformedRequestLines) {
    http_request req;
    EXPECT_FALSE(parse_request_line("", req));
    EXPECT_FALSE(parse_request_line("GET", req));
    EXPECT_FALSE(parse_request_line("GET /x", req));
    EXPECT_FALSE(parse_request_line("GET /x HTTP/1.1 extra", req));
    EXPECT_FALSE(parse_request_line("GET nopath HTTP/1.1", req));
}

TEST(HttpParse, UrlDecodePassesInvalidEscapesThrough) {
    EXPECT_EQ(url_decode("a%2Fb"), "a/b");
    EXPECT_EQ(url_decode("bad%zz"), "bad%zz");
    EXPECT_EQ(url_decode("trunc%2"), "trunc%2");
}

TEST(HttpRender, ResponseCarriesLengthAndRetryAfter) {
    http_response resp;
    resp.status = 503;
    resp.body = "overloaded";
    resp.retry_after_seconds = 7;
    const std::string bytes = render_response(resp);
    EXPECT_NE(bytes.find("HTTP/1.1 503 Service Unavailable\r\n"), std::string::npos);
    EXPECT_NE(bytes.find("Content-Length: 10\r\n"), std::string::npos);
    EXPECT_NE(bytes.find("Retry-After: 7\r\n"), std::string::npos);
    EXPECT_NE(bytes.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(bytes.substr(bytes.size() - 10), "overloaded");
}

TEST(HttpRender, NoRetryAfterByDefault) {
    http_response resp;
    resp.body = "ok";
    EXPECT_EQ(render_response(resp).find("Retry-After"), std::string::npos);
}

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

/// Tight limits so the slow-client tests finish in well under a second.
http_limits tight_limits() {
    http_limits limits;
    limits.io_timeout_seconds = 0.05;
    limits.head_deadline_seconds = 0.25;
    limits.max_head_bytes = 512;
    return limits;
}

TEST(HttpReadHead, ParsesACompleteHead) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string head = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_TRUE(send_all(fds[1], head));
    http_request req;
    EXPECT_EQ(read_request_head(fds[0], tight_limits(), req), head_status::ok);
    EXPECT_EQ(req.path, "/metrics");
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(HttpReadHead, SilentClientTimesOutAtTheDeadline) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    http_request req;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(read_request_head(fds[0], tight_limits(), req), head_status::timeout);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_GE(elapsed, 0.2);  // waited out the total deadline...
    EXPECT_LT(elapsed, 2.0);  // ...but nowhere near unbounded
    ::close(fds[0]);
    ::close(fds[1]);
}

// The slow-loris regression: a drip-feed client sends one byte per
// io_timeout interval, so every per-recv timer is reset and a server with
// only per-recv timeouts reads forever. The *total* head deadline must cut
// the connection off regardless.
TEST(HttpReadHead, DripFeedClientCannotOutliveTheTotalDeadline) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const http_limits limits = tight_limits();
    std::thread drip([fd = fds[1]] {
        // Never a terminator, never a pause long enough to trip a per-recv
        // timer on its own. MSG_NOSIGNAL: the reader hanging up mid-drip is
        // the expected outcome, not a SIGPIPE.
        for (int i = 0; i < 40; ++i) {
            if (::send(fd, "x", 1, MSG_NOSIGNAL) <= 0) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    http_request req;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(read_request_head(fds[0], limits, req), head_status::timeout);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_LT(elapsed, limits.head_deadline_seconds + 0.5);
    ::close(fds[0]);
    drip.join();
    ::close(fds[1]);
}

TEST(HttpReadHead, OversizedHeadIsRejectedNotBuffered) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string big = "GET /" + std::string(2048, 'a') + " HTTP/1.1\r\n";
    ASSERT_TRUE(send_all(fds[1], big));
    http_request req;
    EXPECT_EQ(read_request_head(fds[0], tight_limits(), req), head_status::too_large);
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(HttpReadHead, ClosedPeerReportsClosed) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(send_all(fds[1], "GET /x HT"));
    ::close(fds[1]);
    http_request req;
    EXPECT_EQ(read_request_head(fds[0], tight_limits(), req), head_status::closed);
    ::close(fds[0]);
}

TEST(HttpReadHead, GarbageRequestLineIsMalformed) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(send_all(fds[1], "not an http request line\r\n\r\n"));
    http_request req;
    EXPECT_EQ(read_request_head(fds[0], tight_limits(), req), head_status::malformed);
    ::close(fds[0]);
    ::close(fds[1]);
}

/// Accepts exactly one connection on an ephemeral port and hands it to
/// `handler` on a background thread. The destructor joins, so handlers must
/// terminate once the client hangs up (their sends start failing).
class one_shot_server {
public:
    template <class Handler>
    explicit one_shot_server(Handler handler) {
        const auto [fd, port] = listen_on(0);
        listen_fd_ = fd;
        port_ = port;
        worker_ = std::thread([fd, handler] {
            const int client = ::accept(fd, nullptr, nullptr);
            if (client >= 0) {
                handler(client);
                ::close(client);
            }
        });
    }
    ~one_shot_server() {
        worker_.join();
        ::close(listen_fd_);
    }
    [[nodiscard]] unsigned short port() const noexcept { return port_; }

private:
    int listen_fd_ = -1;
    unsigned short port_ = 0;
    std::thread worker_;
};

/// Read the client's request head before answering: closing a socket with
/// unread received data sends an RST, which can discard the response from
/// the client's buffer — a real server always consumes the request first.
void drain_request(int fd) {
    std::string head;
    char buf[512];
    while (head.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) return;
        head.append(buf, static_cast<std::size_t>(n));
    }
}

// The client-side slow-loris regression, mirror image of the server test
// above: a drip-feed *server* trickles one byte per interval without ever
// closing, so every per-recv timer is reset and a client with only per-recv
// timeouts reads (and buffers) for as long as the server cares to drip. The
// total response deadline must cut it off at ~timeout_seconds.
TEST(HttpGetClient, DripFeedServerCannotOutliveTheTotalDeadline) {
    one_shot_server server([](int client) {
        drain_request(client);
        (void)send_all(client, "HTTP/1.1 200 OK\r\n\r\n");
        // Never closes on its own: 150 drips x 20 ms = 3 s of trickle. The
        // client hanging up mid-drip makes send fail, which is the expected
        // way out (MSG_NOSIGNAL inside send_all turns SIGPIPE into -1).
        for (int i = 0; i < 150; ++i) {
            if (::send(client, "x", 1, MSG_NOSIGNAL) <= 0) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    const auto start = std::chrono::steady_clock::now();
    const auto body = http_get(server.port(), "/", /*timeout_seconds=*/0.3);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    EXPECT_FALSE(body.has_value());  // deadline tears the response
    EXPECT_GE(elapsed, 0.25);        // waited out the total deadline...
    EXPECT_LT(elapsed, 1.0);         // ...not the server's 3 s of drip
}

TEST(HttpGetClient, OversizedResponseIsBoundedNotBuffered) {
    one_shot_server server([](int client) {
        drain_request(client);
        (void)send_all(client, "HTTP/1.1 200 OK\r\n\r\n" + std::string(1 << 16, 'z'));
    });
    int status = -1;
    const auto body = http_get(server.port(), "/", /*timeout_seconds=*/2.0, &status,
                               /*max_response_bytes=*/1024);
    EXPECT_FALSE(body.has_value());
    EXPECT_EQ(status, 0);
}

// The atoi regression: a garbage status field used to parse as "status 0"
// and the body was still returned as if the exchange were fine. A response
// whose status cannot be read strictly must read as no response at all.
TEST(HttpGetClient, GarbageStatusFieldYieldsNoResponse) {
    const std::string garbage[] = {
        "HTTP/1.1 ABC Bad\r\n\r\nbody",   // non-numeric field
        "HTTP/1.1 42 Early\r\n\r\nbody",  // two digits then a space
        "HTTP/1.1 9999 Big\r\n\r\nbody",  // four digits
        "HTTP/1.1 099 Pad\r\n\r\nbody",   // below the 1xx-5xx range
    };
    for (const std::string& head : garbage) {
        one_shot_server server([head](int client) {
            drain_request(client);
            (void)send_all(client, head);
        });
        int status = -1;
        const auto body = http_get(server.port(), "/", 2.0, &status);
        EXPECT_FALSE(body.has_value()) << head;
        EXPECT_EQ(status, 0) << head;
    }
}

TEST(HttpGetClient, WellFormedErrorStatusStillParses) {
    one_shot_server server([](int client) {
        drain_request(client);
        (void)send_all(client, "HTTP/1.1 404 Not Found\r\n\r\noops");
    });
    int status = -1;
    const auto body = http_get(server.port(), "/", 2.0, &status);
    ASSERT_TRUE(body.has_value());
    EXPECT_EQ(*body, "oops");
    EXPECT_EQ(status, 404);
}

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS

}  // namespace
}  // namespace levy::serve
