#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/rng/rng_stream.h"
#include "src/serve/cache.h"

namespace levy::serve {
namespace {

std::string scratch_path(const char* name) {
    return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
}

void spew(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ResultCache, QuantizeSnapsToGridAndRoundTrips) {
    result_cache cache(cache_options{});
    const cache_key key = cache.quantize(2.5, 64, 8, 4096);
    // Centers of the cell the query landed in match the query when it sits
    // exactly on the grid (2.5 = 80/32; 4096 = 2^12 on the octave grid).
    EXPECT_DOUBLE_EQ(cache.alpha_of(key.alpha_q), 2.5);
    EXPECT_DOUBLE_EQ(cache.log2_budget_of(key.budget_q), 12.0);
    EXPECT_EQ(key.ell, 64);
    EXPECT_EQ(key.k, 8u);
    // Nearby queries within half a grid step share the cell.
    EXPECT_EQ(cache.quantize(2.51, 64, 8, 4100), key);
    // ℓ and k stay exact — no mixing across them.
    EXPECT_FALSE(cache.quantize(2.5, 65, 8, 4096) == key);
    EXPECT_FALSE(cache.quantize(2.5, 64, 9, 4096) == key);
}

TEST(ResultCache, FindHitsAndLruEvictsColdest) {
    cache_options opts;
    opts.capacity = 2;
    result_cache cache(opts);
    const cache_key a = cache.quantize(2.0, 10, 1, 100);
    const cache_key b = cache.quantize(2.5, 10, 1, 100);
    const cache_key c = cache.quantize(3.0, 10, 1, 100);
    cache.insert(a, {0.1, 0.05, 0.15, 50});
    cache.insert(b, {0.2, 0.15, 0.25, 50});
    ASSERT_TRUE(cache.find(a).has_value());  // refresh a: b is now coldest
    cache.insert(c, {0.3, 0.25, 0.35, 50});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.find(a).has_value());
    EXPECT_FALSE(cache.find(b).has_value());
    EXPECT_TRUE(cache.find(c).has_value());
}

// S3 property test: whatever we insert (including junk outside [0, 1]) and
// wherever we interpolate, the reported probability never leaves [0, 1].
TEST(ResultCache, PropertyInterpolationNeverLeavesUnitInterval) {
    cache_options opts;
    opts.capacity = 512;
    result_cache cache(opts);
    levy::rng stream = levy::rng::seeded(0xC0FFEEu);
    const auto uniform = [&stream](double lo, double hi) {
        return stream.uniform(lo, hi);
    };
    // Populate with randomized values, some deliberately out of range —
    // insert() clamps, so no later read can escape the unit interval.
    for (int i = 0; i < 400; ++i) {
        const double alpha = uniform(1.5, 3.5);
        const auto budget = static_cast<std::uint64_t>(uniform(1.0, 1e6));
        const cache_key key = cache.quantize(alpha, 16, 4, budget);
        const double p = uniform(-0.5, 1.5);
        cache.insert(key, {p, p - 0.1, p + 0.1, 100});
    }
    for (int i = 0; i < 2000; ++i) {
        const double alpha = uniform(1.5, 3.5);
        const auto budget = static_cast<std::uint64_t>(uniform(1.0, 1e6));
        const auto interp = cache.interpolate(alpha, 16, 4, budget);
        if (!interp.has_value()) continue;
        EXPECT_GE(interp->probability, 0.0)
            << "alpha=" << alpha << " budget=" << budget;
        EXPECT_LE(interp->probability, 1.0)
            << "alpha=" << alpha << " budget=" << budget;
        EXPECT_GE(interp->grid_points, 1);
        EXPECT_LE(interp->grid_points, 4);
    }
}

TEST(ResultCache, BilinearInterpolationIsExactForBilinearData) {
    result_cache cache(cache_options{});
    // Values linear in (α, log₂ budget): interpolation must reproduce the
    // plane exactly (up to clamping, which this data never triggers).
    const auto plane = [](double alpha, double log2_budget) {
        return 0.1 + 0.08 * alpha + 0.02 * log2_budget;
    };
    const cache_key base = cache.quantize(2.5, 32, 2, 1024);
    for (int da = 0; da <= 1; ++da) {
        for (int db = 0; db <= 1; ++db) {
            cache_key key = base;
            key.alpha_q += da;
            key.budget_q += db;
            const double v =
                plane(cache.alpha_of(key.alpha_q), cache.log2_budget_of(key.budget_q));
            cache.insert(key, {v, v, v, 100});
        }
    }
    // A query strictly inside the cell sees all 4 corners.
    const double alpha = cache.alpha_of(base.alpha_q) +
                         0.4 * (cache.alpha_of(base.alpha_q + 1) -
                                cache.alpha_of(base.alpha_q));
    const double lb = cache.log2_budget_of(base.budget_q) +
                      0.7 * (cache.log2_budget_of(base.budget_q + 1) -
                             cache.log2_budget_of(base.budget_q));
    const auto budget = static_cast<std::uint64_t>(std::pow(2.0, lb) + 0.5);
    const auto interp = cache.interpolate(alpha, 32, 2, budget);
    ASSERT_TRUE(interp.has_value());
    EXPECT_EQ(interp->grid_points, 4);
    // The budget rounds to an integer, so compare against the plane at the
    // *actual* coordinate.
    const double expected = plane(alpha, std::log2(static_cast<double>(budget)));
    EXPECT_NEAR(interp->probability, expected, 1e-3);
}

TEST(ResultCache, SaveLoadRoundTripsEveryEntry) {
    const std::string path = scratch_path("cache_roundtrip.bin");
    result_cache cache(cache_options{});
    std::vector<cache_key> keys;
    for (int i = 0; i < 32; ++i) {
        const cache_key key = cache.quantize(2.0 + 0.05 * i, 8 + i, 2, 100 + 40 * i);
        keys.push_back(key);
        cache.insert(key, {0.01 * i, 0.005 * i, 0.02 * i, 100u + static_cast<std::uint64_t>(i)});
    }
    cache.save(path);
    result_cache loaded(cache_options{});
    EXPECT_EQ(loaded.load(path), 32u);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto v = loaded.find(keys[i]);
        ASSERT_TRUE(v.has_value()) << "entry " << i;
        EXPECT_DOUBLE_EQ(v->probability, 0.01 * static_cast<double>(i));
        EXPECT_EQ(v->trials, 100u + i);
    }
    std::remove(path.c_str());
}

// S3 property test: flip one bit at EVERY byte offset of the persisted
// file. Each corruption drops at most the records its CRC covers — loading
// never throws, never loads garbage values, and a flip in one record's
// bytes leaves the other records intact.
TEST(ResultCache, PropertyBitFlipDropsOnlyTheCorruptedRecord) {
    const std::string path = scratch_path("cache_bitflip.bin");
    result_cache cache(cache_options{});
    constexpr int kEntries = 8;
    for (int i = 0; i < kEntries; ++i) {
        const cache_key key = cache.quantize(2.0 + 0.1 * i, 16, 2, 1000);
        cache.insert(key, {0.1 + 0.05 * i, 0.0, 1.0, 64});
    }
    cache.save(path);
    const std::string pristine = slurp(path);
    ASSERT_FALSE(pristine.empty());

    const std::string flipped_path = scratch_path("cache_bitflip_mut.bin");
    for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
        std::string mutated = pristine;
        mutated[offset] = static_cast<char>(mutated[offset] ^ 0x40);
        spew(flipped_path, mutated);
        result_cache loaded(cache_options{});
        std::size_t kept = 0;
        ASSERT_NO_THROW(kept = loaded.load(flipped_path)) << "offset " << offset;
        // A single bit flip invalidates the header (drop all) or exactly
        // one record's CRC scope — never more than one record otherwise.
        EXPECT_TRUE(kept == kEntries - 1 || kept == kEntries || kept == 0)
            << "offset " << offset << " kept " << kept;
        // Whatever loaded must be byte-faithful to an original entry.
        for (int i = 0; i < kEntries; ++i) {
            const cache_key key = cache.quantize(2.0 + 0.1 * i, 16, 2, 1000);
            const auto v = loaded.find(key);
            if (!v.has_value()) continue;
            EXPECT_DOUBLE_EQ(v->probability, 0.1 + 0.05 * i)
                << "offset " << offset << " entry " << i;
        }
    }
    std::remove(path.c_str());
    std::remove(flipped_path.c_str());
}

TEST(ResultCache, TruncatedFileLosesOnlyTheTail) {
    const std::string path = scratch_path("cache_trunc.bin");
    result_cache cache(cache_options{});
    for (int i = 0; i < 8; ++i) {
        cache.insert(cache.quantize(2.0 + 0.1 * i, 16, 2, 1000),
                     {0.1 + 0.05 * i, 0.0, 1.0, 64});
    }
    cache.save(path);
    const std::string pristine = slurp(path);
    // Chop a third off the end: the surviving prefix of whole records must
    // still load (MRU-first serialization keeps the hottest entries).
    spew(path, pristine.substr(0, pristine.size() * 2 / 3));
    result_cache loaded(cache_options{});
    std::size_t kept = 0;
    ASSERT_NO_THROW(kept = loaded.load(path));
    EXPECT_GT(kept, 0u);
    EXPECT_LT(kept, 8u);
    std::remove(path.c_str());
}

TEST(ResultCache, MissingFileLoadsNothing) {
    result_cache cache(cache_options{});
    EXPECT_EQ(cache.load(scratch_path("does_not_exist.bin")), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, DirtyInsertsResetOnSave) {
    const std::string path = scratch_path("cache_dirty.bin");
    result_cache cache(cache_options{});
    EXPECT_EQ(cache.dirty_inserts(), 0u);
    cache.insert(cache.quantize(2.0, 16, 2, 1000), {0.5, 0.4, 0.6, 64});
    cache.insert(cache.quantize(2.5, 16, 2, 1000), {0.6, 0.5, 0.7, 64});
    EXPECT_EQ(cache.dirty_inserts(), 2u);
    cache.save(path);
    EXPECT_EQ(cache.dirty_inserts(), 0u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace levy::serve
