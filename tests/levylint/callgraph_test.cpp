// Unit tests for levylint's semantic index and cross-TU call-graph linker
// (tools/levylint/index.h, callgraph.h): call resolution with qualifier
// suffixes, parameter-shape recovery for rng streams, substream-derivation
// tracking, task-lambda attribution through the parallel fixpoint, and the
// unanimity rule for unordered-returning callees.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tools/levylint/callgraph.h"
#include "tools/levylint/index.h"
#include "tools/levylint/lexer.h"

namespace {

using namespace levylint;

project_model model_of(std::vector<std::pair<std::string, std::string>> files) {
    std::vector<tu_index> tus;
    tus.reserve(files.size());
    for (auto& [path, src] : files) {
        tus.push_back(build_index(path, lex(src)));
    }
    return link(std::move(tus));
}

/// The call in `tu` whose callee is `name`; -1 when absent.
int call_index(const project_model& m, int tu, const std::string& name) {
    for (std::size_t c = 0; c < m.tus[tu].calls.size(); ++c) {
        if (m.tus[tu].calls[c].callee == name) return static_cast<int>(c);
    }
    return -1;
}

TEST(LevylintIndex, RecoversParameterShapes) {
    const project_model m = model_of({{"a.cpp", R"src(
        struct rng { double uniform(); };
        double consume(rng s);
        double observe(const rng& g);
        void drive(rng& g, int n);
    )src"}});
    ASSERT_EQ(m.tus[0].funcs.size(), 4u);  // uniform + the three free functions

    const auto& consume = m.tus[0].funcs[1];
    ASSERT_EQ(consume.name, "consume");
    ASSERT_EQ(consume.params.size(), 1u);
    EXPECT_TRUE(consume.params[0].is_rng);
    EXPECT_TRUE(consume.params[0].by_value);
    EXPECT_FALSE(consume.params[0].by_const_ref);

    const auto& observe = m.tus[0].funcs[2];
    ASSERT_EQ(observe.params.size(), 1u);
    EXPECT_TRUE(observe.params[0].is_rng);
    EXPECT_FALSE(observe.params[0].by_value);
    EXPECT_TRUE(observe.params[0].by_const_ref);

    const auto& drive = m.tus[0].funcs[3];
    ASSERT_EQ(drive.params.size(), 2u);
    EXPECT_TRUE(drive.params[0].is_rng);
    EXPECT_FALSE(drive.params[0].by_value);
    EXPECT_FALSE(drive.params[0].by_const_ref);
    EXPECT_FALSE(drive.params[1].is_rng);
    EXPECT_EQ(drive.params[1].name, "n");
}

TEST(LevylintCallgraph, ResolvesCrossTuCallsOnQualifierSuffix) {
    const project_model m = model_of({
        {"src/sim/spawn.h", R"src(
            struct rng;
            namespace levy::sim {
            int spawn(const rng& g);
            }
        )src"},
        {"src/core/run.cpp", R"src(
            struct rng { double uniform(); };
            int runner(rng& g) { return sim::spawn(g); }
        )src"},
    });
    const int caller_tu = m.tu_of("src/core/run.cpp");
    ASSERT_GE(caller_tu, 0);
    const int c = call_index(m, caller_tu, "spawn");
    ASSERT_GE(c, 0);
    ASSERT_EQ(m.call_targets[caller_tu][c].size(), 1u);
    const func_info& callee = m.func(m.call_targets[caller_tu][c][0]);
    EXPECT_EQ(callee.qname, "levy::sim::spawn");
    ASSERT_EQ(callee.params.size(), 1u);
    EXPECT_TRUE(callee.params[0].is_rng);
    EXPECT_TRUE(callee.params[0].by_const_ref);
}

TEST(LevylintCallgraph, MismatchedQualifiersAndStdStayUnresolved) {
    const project_model m = model_of({
        {"lib.h", R"src(
            namespace levy::sim {
            void spawn(int n);
            }
        )src"},
        {"use.cpp", R"src(
            void misqualified() { torus::spawn(3); }
            void standard() { std::sort(3); }
        )src"},
    });
    const int tu = m.tu_of("use.cpp");
    const int mis = call_index(m, tu, "spawn");
    ASSERT_GE(mis, 0);
    EXPECT_TRUE(m.call_targets[tu][mis].empty());  // torus:: is not sim::
    const int srt = call_index(m, tu, "sort");
    ASSERT_GE(srt, 0);
    EXPECT_TRUE(m.call_targets[tu][srt].empty());  // std:: is never ours
}

TEST(LevylintCallgraph, MarksInlineAndBoundNameTaskLambdas) {
    const project_model m = model_of({{"tasks.cpp", R"src(
        template <class F>
        void parallel_for(unsigned long long n, unsigned threads, F&& fn);

        void run_tasks(unsigned threads) {
            auto helper = [](int x) { return x + 1; };
            auto run_one = [&](unsigned long long i) { (void)i; };
            parallel_for(10, threads, run_one);
            parallel_for(10, threads, [&](unsigned long long i) { (void)i; });
            helper(1);
        }
    )src"}});
    const int tu = m.tu_of("tasks.cpp");
    ASSERT_EQ(m.tus[tu].lambdas.size(), 3u);
    int tasks = 0;
    for (std::size_t l = 0; l < m.tus[tu].lambdas.size(); ++l) {
        if (m.lambda_is_task[tu][l]) ++tasks;
        if (m.tus[tu].lambdas[l].bound_name == "helper") {
            EXPECT_FALSE(m.lambda_is_task[tu][l]);  // never reaches the pool
        }
        if (m.tus[tu].lambdas[l].bound_name == "run_one") {
            EXPECT_TRUE(m.lambda_is_task[tu][l]);  // bound name passed to the pool
        }
    }
    EXPECT_EQ(tasks, 2);  // run_one + the inline lambda
}

TEST(LevylintCallgraph, PropagatesTaskMarkingThroughForwardedParams) {
    // The monte_carlo_collect(trial_fn) pattern: a lambda handed to a
    // *wrapper* runs in parallel because the wrapper invokes its parameter
    // inside a pool task — across TU boundaries, to a fixpoint.
    const project_model m = model_of({
        {"wrap.cpp", R"src(
            template <class F>
            void parallel_for(unsigned long long n, unsigned threads, F&& fn);

            template <class F>
            void collect(unsigned long long n, unsigned threads, F trial) {
                parallel_for(n, threads, [&](unsigned long long i) { trial(i); });
            }
        )src"},
        {"use.cpp", R"src(
            template <class F>
            void collect(unsigned long long n, unsigned threads, F trial);

            void estimate(unsigned threads) {
                collect(100, threads, [&](unsigned long long i) { (void)i; });
            }
        )src"},
    });
    const int tu = m.tu_of("use.cpp");
    ASSERT_EQ(m.tus[tu].lambdas.size(), 1u);
    EXPECT_TRUE(m.lambda_is_task[tu][0]);
}

TEST(LevylintIndex, TracksSubstreamDerivationsInBodiesOnly) {
    const project_model m = model_of({{"walker.cpp", R"src(
        struct rng { rng substream(unsigned long long i) const; double uniform(); };
        struct walker {
            rng stream_;
            rng path_stream_;
            walker(rng s) : stream_(s), path_stream_(s.substream(0)) {}
            void phase(unsigned long long p) {
                rng coins = stream_.substream(p);
                (void)coins.uniform();
            }
        };
    )src"}});
    // Body derivation counts; the ctor-init placeholder deliberately does
    // not (a per-phase substream must be rederived keyed by the phase).
    EXPECT_EQ(m.derived_names.count("coins"), 1u);
    EXPECT_EQ(m.derived_names.count("path_stream_"), 0u);
    EXPECT_EQ(m.rng_member_names.count("stream_"), 1u);
    EXPECT_EQ(m.rng_member_names.count("path_stream_"), 1u);
}

TEST(LevylintCallgraph, UnorderedCalleesRequireUnanimity) {
    const project_model m = model_of({
        {"maps.h", R"src(
            std::unordered_map<int, int> census();
            std::vector<int> census(int shard);
            std::unordered_set<int> visited();
        )src"},
        {"use.cpp", R"src(
            void consume() {
                (void)census();
                (void)visited();
            }
        )src"},
    });
    const int tu = m.tu_of("use.cpp");
    ASSERT_GE(tu, 0);
    // visited() is unanimously unordered; census() has a vector overload,
    // so the linker must refuse to classify it.
    EXPECT_EQ(m.unordered_call_names[tu].count("visited"), 1u);
    EXPECT_EQ(m.unordered_call_names[tu].count("census"), 0u);
}

}  // namespace
