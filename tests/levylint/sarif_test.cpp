// SARIF 2.1.0 emission tests (tools/levylint/sarif.h): a byte-exact golden
// file (the writer is deterministic by construction — insertion-ordered
// objects, fixed key order) plus structural assertions on every field the
// SARIF 2.1.0 schema requires of a static-analysis log that
// github/codeql-action/upload-sarif will ingest.
//
// Regenerate the golden after an intentional format change with
//   LEVYLINT_REGOLD=1 ctest -R levy_levylint_tests

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "tools/levylint/sarif.h"

namespace {

using levy::obs::json;
using namespace levylint;

std::vector<finding> sample_findings() {
    return {
        {"src/core/levy_walk.cpp", 21, "substream-discipline",
         "path stepping draws its tie coins from `stream_`, which is not substream-derived"},
        {"src/core/levy_walk.cpp", 63, "substream-discipline",
         "draw from `stream_` after its derived substream `coins` was already used"},
        {"bench/bench_e1.cpp", 5, "float-equality",
         "escapes survive the round trip: quote \" backslash \\ newline \n tab \t"},
    };
}

std::string golden_path() { return std::string(LEVYLINT_TEST_DATA_DIR) + "/golden.sarif"; }

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(LevylintSarif, MatchesGoldenByteForByte) {
    const std::string got = to_sarif(sample_findings());
    if (std::getenv("LEVYLINT_REGOLD") != nullptr) {
        std::ofstream out(golden_path(), std::ios::binary);
        out << got;
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
        return;
    }
    const std::string want = read_file(golden_path());
    ASSERT_FALSE(want.empty()) << "missing golden file " << golden_path();
    EXPECT_EQ(got, want);
}

TEST(LevylintSarif, CarriesEverySchemaRequiredField) {
    const std::vector<finding> findings = sample_findings();
    const json doc = json::parse(to_sarif(findings));

    EXPECT_EQ(doc.at("$schema").as_string(), "https://json.schemastore.org/sarif-2.1.0.json");
    EXPECT_EQ(doc.at("version").as_string(), "2.1.0");

    const json& runs = doc.at("runs");
    ASSERT_TRUE(runs.is_array());
    ASSERT_EQ(runs.size(), 1u);
    const json& run = runs.at(0);

    const json& driver = run.at("tool").at("driver");
    EXPECT_EQ(driver.at("name").as_string(), "levylint");
    EXPECT_FALSE(driver.at("version").as_string().empty());
    const json& descs = driver.at("rules");
    ASSERT_TRUE(descs.is_array());
    ASSERT_EQ(descs.size(), rules().size());
    for (std::size_t i = 0; i < descs.size(); ++i) {
        EXPECT_EQ(descs.at(i).at("id").as_string(), rules()[i].id);
        EXPECT_FALSE(descs.at(i).at("shortDescription").at("text").as_string().empty());
        EXPECT_FALSE(descs.at(i).at("fullDescription").at("text").as_string().empty());
    }

    const json& results = run.at("results");
    ASSERT_TRUE(results.is_array());
    ASSERT_EQ(results.size(), findings.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const json& r = results.at(i);
        EXPECT_EQ(r.at("ruleId").as_string(), findings[i].rule);
        // ruleIndex must point at the matching reportingDescriptor.
        const auto idx = static_cast<std::size_t>(r.at("ruleIndex").as_number());
        ASSERT_LT(idx, descs.size());
        EXPECT_EQ(descs.at(idx).at("id").as_string(), findings[i].rule);
        EXPECT_EQ(r.at("level").as_string(), "error");
        EXPECT_EQ(r.at("message").at("text").as_string(), findings[i].message);

        const json& locs = r.at("locations");
        ASSERT_EQ(locs.size(), 1u);
        const json& phys = locs.at(0).at("physicalLocation");
        EXPECT_EQ(phys.at("artifactLocation").at("uri").as_string(), findings[i].path);
        EXPECT_EQ(static_cast<int>(phys.at("region").at("startLine").as_number()),
                  findings[i].line);
        EXPECT_TRUE(r.at("partialFingerprints").contains("levylint/v1"));
    }

    // Fingerprints must distinguish repeated (path, rule) findings.
    EXPECT_NE(results.at(0).at("partialFingerprints").at("levylint/v1").as_string(),
              results.at(1).at("partialFingerprints").at("levylint/v1").as_string());
}

TEST(LevylintSarif, EmptyFindingsIsStillAValidLog) {
    const json doc = json::parse(to_sarif({}));
    const json& run = doc.at("runs").at(0);
    EXPECT_TRUE(run.at("results").is_array());
    EXPECT_EQ(run.at("results").size(), 0u);
    EXPECT_EQ(run.at("tool").at("driver").at("rules").size(), rules().size());
}

}  // namespace
