// The umbrella header must pull in the whole public API and compose.

#include <levy/levy.h>

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndSmoke) {
    using namespace levy;
    // One line per subsystem, all through the umbrella header.
    rng g = rng::seeded(42);
    levy_walk walk(2.5, g.substream(0));
    const auto solo = hit_within(walk, point{4, 0}, 500);
    (void)solo;
    const auto fleet = parallel_hit(4, uniform_exponent(), {4, 0}, 500, g.substream(1));
    EXPECT_LE(fleet.time, 500u);
    const auto band = analysis::lemma32_bounds(12, 5);
    EXPECT_LT(band.lo, band.hi);
    EXPECT_GT(theory::universal_lower_bound(4.0, 16.0), 0.0);
    baselines::spiral_search spiral;
    spiral.step();
    const torus::torus_geometry torus(8);
    EXPECT_EQ(torus.area(), 64u);
    const smallworld::kleinberg_grid kg(8, 2.0, 1);
    EXPECT_EQ(kg.n(), 8);
    stats::running_summary s;
    s.add(1.0);
    EXPECT_EQ(s.count(), 1u);
}

}  // namespace
