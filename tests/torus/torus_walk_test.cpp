#include <gtest/gtest.h>

#include "src/core/intermittent.h"
#include "src/torus/torus_walk.h"

namespace levy::torus {
namespace {

TEST(TorusGeometry, WrapAndDistance) {
    const torus_geometry g(10);
    EXPECT_EQ(g.wrap({10, -1}), (point{0, 9}));
    EXPECT_EQ(g.distance({0, 0}, {9, 9}), 2);   // wraps both axes
    EXPECT_EQ(g.distance({0, 0}, {5, 5}), 10);  // antipodal
    EXPECT_EQ(g.area(), 100u);
}

TEST(TorusGeometry, RejectsTinyTorus) {
    EXPECT_THROW(torus_geometry(3), std::invalid_argument);
}

TEST(TorusGeometry, RandomNodeInRange) {
    const torus_geometry g(16);
    rng r = rng::seeded(1);
    for (int i = 0; i < 1000; ++i) {
        const point u = g.random_node(r);
        ASSERT_GE(u.x, 0);
        ASSERT_LT(u.x, 16);
        ASSERT_GE(u.y, 0);
        ASSERT_LT(u.y, 16);
    }
}

TEST(TorusWalk, PositionsStayWrapped) {
    const torus_geometry g(32);
    torus_levy_walk w(1.5, rng::seeded(2), g);  // ballistic: would leave fast
    for (int i = 0; i < 20000; ++i) {
        const point p = w.step();
        ASSERT_GE(p.x, 0);
        ASSERT_LT(p.x, 32);
        ASSERT_GE(p.y, 0);
        ASSERT_LT(p.y, 32);
    }
    EXPECT_EQ(w.steps(), 20000u);
}

TEST(TorusWalk, StepsAreUnitOnTheTorus) {
    const torus_geometry g(16);
    torus_levy_walk w(2.0, rng::seeded(3), g, {15, 15});
    point prev = w.position();
    for (int i = 0; i < 5000; ++i) {
        const point next = w.step();
        ASSERT_LE(g.distance(prev, next), 1);
        prev = next;
    }
}

TEST(TorusWalk, JumpsCappedAtHalfTorus) {
    // A phase never moves the unwrapped position by more than n/2.
    const torus_geometry g(20);
    torus_levy_walk w(1.2, rng::seeded(4), g);  // heavy tails beg to exceed
    point phase_start = w.unwrapped();
    for (int i = 0; i < 20000; ++i) {
        const bool was_between = !w.in_phase();
        if (was_between) phase_start = w.unwrapped();
        w.step();
        ASSERT_LE(l1_distance(phase_start, w.unwrapped()), 10);
    }
}

TEST(TorusWalk, FindsUniformTargetEventually) {
    const torus_geometry g(24);
    rng master = rng::seeded(5);
    int hits = 0;
    for (int trial = 0; trial < 30; ++trial) {
        rng stream = master.substream(trial);
        const point target_node = g.random_node(stream);
        torus_levy_walk w(2.0, stream, g);
        const torus_disc_target target{g, target_node, 0};
        hits += hit_within(w, target, 20 * g.area()).hit;
    }
    EXPECT_GE(hits, 25);  // bounded domain: detection is a matter of time
}

TEST(TorusWalk, IntermittentSensingWorksOnTorus) {
    const torus_geometry g(16);
    torus_levy_walk w(2.0, rng::seeded(6), g);
    static_assert(phased_process<torus_levy_walk>);
    const torus_disc_target target{g, {8, 8}, 1};
    const auto r = hit_within_intermittent(w, target, 50000);
    if (r.hit && r.time > 0) {
        EXPECT_FALSE(w.in_phase());
        EXPECT_LE(g.distance(w.position(), {8, 8}), 1);
    }
}

TEST(TorusWalk, DeterministicGivenSeed) {
    const torus_geometry g(32);
    torus_levy_walk a(2.5, rng::seeded(7), g), b(2.5, rng::seeded(7), g);
    for (int i = 0; i < 2000; ++i) ASSERT_EQ(a.step(), b.step());
}

}  // namespace
}  // namespace levy::torus
